#include "server/server.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "parser/parser.h"

namespace viewauth {

namespace {

using Clock = std::chrono::steady_clock;

// The accept loop's poll slice and the session read loop's first-byte
// slice: how quickly either notices a stop/drain flag. Short enough
// that drains feel immediate, long enough that idle sessions cost a
// handful of wakeups per second.
constexpr long long kPollSliceMs = 50;

// Hello payloads are user names; anything longer is a protocol error.
constexpr size_t kMaxHelloBytes = 256;

long long ElapsedMicros(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

}  // namespace

std::string ServerStats::ToString() const {
  std::ostringstream out;
  out << "server stats:\n"
      << "  connections:      " << connections_accepted << " accepted, "
      << connections_active << " active, " << connections_evicted
      << " evicted, " << connections_rejected << " rejected\n"
      << "  frames:           " << frames_in << " in, " << frames_out
      << " out\n"
      << "  requests:         " << requests_ok << " ok, " << requests_error
      << " error (" << requests_shed << " shed), " << requests_in_flight
      << " in flight\n"
      << "  protocol errors:  " << protocol_errors << "\n"
      << "  timeouts:         " << read_timeouts << " read, "
      << write_timeouts << " write\n"
      << "  drain:            " << drain_rejects << " reject(s), last drain "
      << drain_micros << "us\n";
  return out.str();
}

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), durable_(nullptr), options_(std::move(options)) {}

Server::Server(DurableEngine* durable, ServerOptions options)
    : engine_(&durable->engine()),
      durable_(durable),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start(std::unique_ptr<ListenSocket> listener) {
  if (running_.load()) return Status::Internal("server already started");
  listener_ = std::move(listener);
  port_ = listener_->port();
  stop_accepting_.store(false);
  draining_.store(false);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      ReapFinishedSessionsLocked();
    }
    Result<std::unique_ptr<Socket>> accepted = listener_->Accept(kPollSliceMs);
    if (!accepted.ok()) {
      // The timeout is the loop's heartbeat; anything else is transient
      // (or the listener going away under Stop) — keep looping, the
      // stop flag decides.
      continue;
    }
    std::unique_ptr<Socket> socket = std::move(*accepted);
    if (options_.socket_wrapper) {
      socket = options_.socket_wrapper(std::move(socket));
    }
    int active = 0;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      active = static_cast<int>(stats_.connections_active);
    }
    if (active >= options_.max_connections) {
      // Shed the connection with a structured goodbye, not a slam. The
      // counter is bumped BEFORE the error frame goes out so the books
      // never lag what a peer has already observed on the wire.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_rejected;
      }
      std::string frame = EncodeFrame(
          FrameType::kError, "server at capacity (" +
                                 std::to_string(options_.max_connections) +
                                 " connections); retry later");
      (void)WriteFully(*socket, frame, kPollSliceMs);
      (void)socket->Close();
      continue;
    }
    auto session = std::make_unique<Session>();
    session->socket = std::move(socket);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session->id = next_session_id_++;
    Session* raw = session.get();
    session->thread = std::thread(&Server::RunSession, this, raw);
    sessions_.push_back(std::move(session));
  }
}

void Server::ReapFinishedSessionsLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Server::SendFrame(Session* session, FrameType type,
                       std::string_view payload) {
  Status written = WriteFully(*session->socket, EncodeFrame(type, payload),
                              options_.io_timeout_ms);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (written.ok()) {
    ++stats_.frames_out;
    return true;
  }
  // A peer that will not drain its reply is a slow client: evict.
  if (written.IsDeadlineExceeded()) ++stats_.write_timeouts;
  ++stats_.connections_evicted;
  return false;
}

Status Server::ApplySessionIdentity(Statement* statement,
                                    const std::string& user) const {
  if (user == options_.admin_user) return Status::OK();
  // Non-admin sessions act strictly as themselves: their identity is
  // the HELLO identity, and administrative statements are refused at
  // the protocol boundary (the paper scopes administration to the
  // database administrator).
  auto bind_user = [&user](std::string* as_user) -> Status {
    if (as_user->empty()) {
      *as_user = user;
      return Status::OK();
    }
    if (*as_user != user) {
      return Status::PermissionDenied("session user '" + user +
                                      "' may not act as '" + *as_user + "'");
    }
    return Status::OK();
  };
  if (auto* retrieve = std::get_if<RetrieveStmt>(statement)) {
    return bind_user(&retrieve->as_user);
  }
  if (auto* insert = std::get_if<InsertStmt>(statement)) {
    return bind_user(&insert->as_user);
  }
  if (auto* del = std::get_if<DeleteStmt>(statement)) {
    return bind_user(&del->as_user);
  }
  if (auto* modify = std::get_if<ModifyStmt>(statement)) {
    return bind_user(&modify->as_user);
  }
  return Status::PermissionDenied(
      "administrative statement requires an admin session (session user '" +
      user + "')");
}

Result<std::string> Server::ExecuteStatement(const Statement& statement,
                                             const ExecLimits& limits) {
  if (durable_ != nullptr) return durable_->ExecuteParsed(statement, &limits);
  return engine_->ExecuteParsed(statement, &limits);
}

bool Server::HandleRequest(Session* session, const std::string& user,
                           const Frame& frame) {
  Result<RequestPayload> decoded = DecodeRequest(frame.payload);
  if (!decoded.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    (void)SendFrame(session, FrameType::kError, decoded.status().message());
    return false;
  }
  const RequestPayload& request = *decoded;
  ReplyPayload reply;
  reply.id = request.id;
  if (user.empty()) {
    reply.code = static_cast<int32_t>(StatusCode::kPermissionDenied);
    reply.text = "hello required before requests";
  } else if (draining_.load(std::memory_order_acquire)) {
    reply.code = static_cast<int32_t>(StatusCode::kUnavailable);
    reply.text = "server is shutting down";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.drain_rejects;
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_in_flight;
    }
    Result<std::string> outcome = [&]() -> Result<std::string> {
      VIEWAUTH_ASSIGN_OR_RETURN(Statement statement,
                                ParseStatement(request.statement));
      VIEWAUTH_RETURN_NOT_OK(ApplySessionIdentity(&statement, user));
      ExecLimits limits;
      limits.deadline_ms = request.deadline_ms > 0
                               ? static_cast<long long>(request.deadline_ms)
                               : options_.default_deadline_ms;
      return ExecuteStatement(statement, limits);
    }();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --stats_.requests_in_flight;
    }
    if (outcome.ok()) {
      reply.code = 0;
      reply.text = std::move(*outcome);
    } else {
      reply.code = static_cast<int32_t>(outcome.status().code());
      reply.text = outcome.status().message();
    }
  }
  std::string payload = EncodeReply(reply);
  if (payload.size() + 1 > options_.max_frame_bytes) {
    // The rendering outgrew the frame cap; deliver a structured error
    // instead of an unframeable reply.
    ReplyPayload too_large;
    too_large.id = reply.id;
    too_large.code = static_cast<int32_t>(StatusCode::kResourceExhausted);
    too_large.text = "reply of " + std::to_string(payload.size()) +
                     " bytes exceeds the frame cap; narrow the request";
    reply = std::move(too_large);
    payload = EncodeReply(reply);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (reply.code == 0) {
      ++stats_.requests_ok;
    } else {
      ++stats_.requests_error;
      if (reply.code == static_cast<int32_t>(StatusCode::kUnavailable)) {
        ++stats_.requests_shed;
      }
    }
  }
  return SendFrame(session, FrameType::kReply, payload);
}

void Server::RunSession(Session* session) {
  std::string user;
  auto idle_deadline =
      Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
  for (;;) {
    const bool drain_now = draining_.load(std::memory_order_acquire);
    // During a drain, only already-buffered frames are read (timeout 0):
    // each queued request gets its structured shutting-down reply, then
    // the connection closes.
    Result<Frame> read = ReadFrame(
        *session->socket, options_.max_frame_bytes,
        /*first_byte_timeout_ms=*/drain_now ? 0 : kPollSliceMs,
        /*rest_timeout_ms=*/drain_now
            ? std::min<long long>(options_.io_timeout_ms, 250)
            : options_.io_timeout_ms);
    if (!read.ok()) {
      const Status& status = read.status();
      if (status.IsDeadlineExceeded()) {
        if (drain_now) {
          (void)SendFrame(session, FrameType::kError,
                          "server is shutting down");
          break;
        }
        if (Clock::now() >= idle_deadline) {
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.read_timeouts;
            ++stats_.connections_evicted;
          }
          (void)SendFrame(session, FrameType::kError,
                          "idle timeout; connection evicted");
          break;
        }
        continue;
      }
      if (status.IsNotFound()) break;  // clean close at a frame boundary
      if (status.IsInvalidArgument()) {
        // Oversized, corrupt, truncated or stalled frame: the stream
        // cannot be resynchronized. Best-effort error, then close.
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.protocol_errors;
        }
        (void)SendFrame(session, FrameType::kError, status.message());
      }
      break;  // reset or internal error: just close
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_in;
    }
    idle_deadline =
        Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
    const Frame& frame = *read;
    if (frame.type == FrameType::kHello) {
      if (frame.payload.empty() || frame.payload.size() > kMaxHelloBytes) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.protocol_errors;
        }
        (void)SendFrame(session, FrameType::kError, "malformed hello");
        break;
      }
      user = frame.payload;
      ReplyPayload ack;
      ack.id = 0;
      ack.code = 0;
      ack.text = "hello " + user;
      if (!SendFrame(session, FrameType::kReply, EncodeReply(ack))) break;
      continue;
    }
    if (frame.type == FrameType::kRequest) {
      if (!HandleRequest(session, user, frame)) break;
      continue;
    }
    if (frame.type == FrameType::kStats) {
      ReplyPayload reply;
      if (frame.payload.size() >= 8) {
        uint64_t id = 0;
        for (int i = 7; i >= 0; --i) {
          id = (id << 8) |
               static_cast<unsigned char>(frame.payload[static_cast<size_t>(i)]);
        }
        reply.id = id;
      }
      reply.code = 0;
      reply.text = StatsReport();
      if (!SendFrame(session, FrameType::kReply, EncodeReply(reply))) break;
      continue;
    }
    if (frame.type == FrameType::kGoodbye) break;
    // A client has no business sending reply/error frames.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    (void)SendFrame(session, FrameType::kError,
                    "unexpected frame type from client");
    break;
  }
  (void)session->socket->Shutdown();
  (void)session->socket->Close();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.connections_active;
  }
  session->done.store(true, std::memory_order_release);
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const auto drain_start = Clock::now();
  draining_.store(true, std::memory_order_release);
  engine_->SetDraining(true);
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_ != nullptr) (void)listener_->Close();

  // Give sessions the drain window to finish their in-flight requests
  // and answer queued ones; they notice the drain flag within one poll
  // slice.
  const auto force_deadline =
      drain_start + std::chrono::milliseconds(options_.drain_timeout_ms);
  for (;;) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (const auto& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done) break;
    if (Clock::now() >= force_deadline) {
      // Stragglers: cancel their retrieves (they abort at the next
      // governor probe) and shut their sockets so blocked I/O wakes.
      engine_->CancelActiveRetrieves();
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (const auto& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) {
          (void)session->socket->Shutdown();
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.connections_evicted;
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.drain_micros = ElapsedMicros(drain_start);
    stats_.connections_active = 0;
  }
  // Leave the engine usable for whoever owns it next.
  engine_->SetDraining(false);
  draining_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string Server::StatsReport() const {
  std::string report = stats().ToString();
  report += engine_->authz_stats().ToString();
  if (durable_ != nullptr) report += durable_->stats().ToString();
  return report;
}

}  // namespace viewauth
