// The fault-tolerant wire-protocol front end over Engine/DurableEngine.
//
// One Server owns a listener plus a session thread per connection. Each
// session carries a user identity established by the HELLO frame; the
// identity — not anything inside the statement text — decides whose
// masks apply, so a protocol-level client cannot escalate by writing
// `as OTHER` into a retrieve (only an admin session may impersonate or
// run administrative statements). Requests execute one at a time per
// connection (clients may pipeline; frames queue in the socket with the
// kernel's bounded buffer as natural backpressure, and at most one
// reply is ever buffered server-side).
//
// Robustness is the headline:
//   * frame codec with hard size caps and CRCs — a hostile length
//     prefix allocates nothing, a flipped bit is caught before parsing
//   * per-request deadlines (request header or server default) composed
//     with the engine's own limits via the ExecContext governor
//   * reads and writes under timeouts: an idle connection is evicted
//     after idle_timeout_ms, a peer that stalls mid-frame or refuses to
//     drain a reply is evicted after io_timeout_ms
//   * admission shedding surfaces as a structured Unavailable reply,
//     never a dropped socket
//   * graceful drain: Stop() closes the listener, lets in-flight
//     requests finish, answers queued/late requests with a structured
//     shutting-down error, and force-closes stragglers only after
//     drain_timeout_ms (cancelling their retrieves first)
//
// The failure matrix lives in DESIGN.md §18.

#ifndef VIEWAUTH_SERVER_SERVER_H_
#define VIEWAUTH_SERVER_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "engine/durable.h"
#include "engine/engine.h"
#include "server/frame.h"

namespace viewauth {

struct ServerOptions {
  // Sessions beyond this are greeted with an error frame and closed.
  int max_connections = 256;
  // Eviction timeouts: a connection with no complete frame for
  // idle_timeout_ms, or one that stalls mid-frame / refuses to drain a
  // reply for io_timeout_ms, is evicted.
  long long idle_timeout_ms = 60'000;
  long long io_timeout_ms = 10'000;
  // How long Stop() waits for sessions to finish before force-closing
  // them (cancelling their in-flight retrieves first).
  long long drain_timeout_ms = 10'000;
  // Applied to requests that carry no deadline of their own; composed
  // with the engine's AuthorizationOptions limits (strictest wins).
  long long default_deadline_ms = 0;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Sessions running as this user may execute administrative statements
  // and impersonate via `as USER`; everyone else is confined to their
  // own retrieves and guarded updates.
  std::string admin_user = "admin";
  // Test hook: wraps every accepted socket (fault injection).
  std::function<std::unique_ptr<Socket>(std::unique_ptr<Socket>)>
      socket_wrapper;
};

// Counters in the AuthzStats idiom: disjoint outcomes, readable at any
// moment, rendered by ToString for the stats frame and the
// viewauth_server shutdown report.
struct ServerStats {
  long long connections_accepted = 0;
  long long connections_active = 0;
  long long connections_evicted = 0;   // timeout / backpressure kicks
  long long connections_rejected = 0;  // at capacity
  long long frames_in = 0;
  long long frames_out = 0;
  long long requests_ok = 0;
  long long requests_error = 0;  // structured error replies (any cause)
  long long requests_shed = 0;   // of which: admission control sheds
  long long requests_in_flight = 0;
  long long protocol_errors = 0;  // unparseable/corrupt/oversized frames
  long long read_timeouts = 0;
  long long write_timeouts = 0;
  long long drain_rejects = 0;  // shutting-down error replies
  long long drain_micros = 0;   // wall time of the last graceful drain

  std::string ToString() const;
};

class Server {
 public:
  // The engine must outlive the server. With a DurableEngine, mutations
  // route through the durable commit path; with a bare Engine they
  // apply in memory only.
  explicit Server(Engine* engine, ServerOptions options = {});
  explicit Server(DurableEngine* durable, ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Stops (gracefully draining) if still running.
  ~Server();

  // Takes ownership of a bound listener and starts the accept loop.
  Status Start(std::unique_ptr<ListenSocket> listener);

  // Graceful drain: stop accepting, answer late requests with a
  // structured shutting-down error, wait for in-flight work, then
  // force-close stragglers after drain_timeout_ms. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // The bound TCP port (0 for unix listeners); valid after Start.
  int port() const { return port_; }

  ServerStats stats() const;
  // The server + authorization + durability report the stats frame and
  // the viewauth_server shutdown path render.
  std::string StatsReport() const;

  Engine& engine() { return *engine_; }

 private:
  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Socket> socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void RunSession(Session* session);
  // One request frame: decode, enforce identity, execute, reply.
  // Returns false when the session should end (drain reply sent).
  bool HandleRequest(Session* session, const std::string& user,
                     const Frame& frame);
  // The session-identity policy described in the class comment.
  Status ApplySessionIdentity(Statement* statement,
                              const std::string& user) const;
  Result<std::string> ExecuteStatement(const Statement& statement,
                                       const ExecLimits& limits);
  // Best-effort framed send under the io timeout; a failure or timeout
  // marks the connection for eviction.
  bool SendFrame(Session* session, FrameType type, std::string_view payload);
  void ReapFinishedSessionsLocked();

  Engine* engine_;
  DurableEngine* durable_;  // null when serving a bare Engine
  ServerOptions options_;

  std::unique_ptr<ListenSocket> listener_;
  std::thread accept_thread_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_accepting_{false};

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace viewauth

#endif  // VIEWAUTH_SERVER_SERVER_H_
