#include "server/frame.h"

#include <cstring>

#include "common/crc32.h"

namespace viewauth {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

bool KnownType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kRequest:
    case FrameType::kStats:
    case FrameType::kGoodbye:
    case FrameType::kReply:
    case FrameType::kError:
      return true;
  }
  return false;
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  PutU32(&frame, Crc32(body));
  frame.append(body);
  return frame;
}

Result<Frame> ReadFrame(Socket& socket, uint32_t max_frame_bytes,
                        long long first_byte_timeout_ms,
                        long long rest_timeout_ms) {
  // The header is read in two steps so an idle connection (no bytes at
  // all) is distinguishable from a peer that died mid-frame.
  char header[kFrameHeaderBytes];
  VIEWAUTH_ASSIGN_OR_RETURN(
      size_t first, socket.Read(header, sizeof(header), first_byte_timeout_ms));
  if (first == 0) return Status::NotFound("connection closed");
  Status rest = ReadFully(socket, header + first, sizeof(header) - first,
                          rest_timeout_ms);
  if (!rest.ok()) {
    if (rest.IsNotFound() || rest.IsUnavailable()) {
      return Status::InvalidArgument("mid-frame disconnect inside header");
    }
    if (rest.IsDeadlineExceeded()) {
      return Status::InvalidArgument("peer stalled mid-frame header");
    }
    return rest;
  }
  const uint32_t body_len = GetU32(header);
  const uint32_t body_crc = GetU32(header + 4);
  if (body_len == 0) {
    return Status::InvalidArgument("zero-length frame body");
  }
  if (body_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte cap");
  }
  std::string body(body_len, '\0');
  Status body_read = ReadFully(socket, body.data(), body_len, rest_timeout_ms);
  if (!body_read.ok()) {
    if (body_read.IsNotFound() || body_read.IsUnavailable()) {
      return Status::InvalidArgument("mid-frame disconnect inside body");
    }
    if (body_read.IsDeadlineExceeded()) {
      return Status::InvalidArgument("peer stalled mid-frame body");
    }
    return body_read;
  }
  if (Crc32(body) != body_crc) {
    return Status::InvalidArgument("frame body failed its CRC32 check");
  }
  const uint8_t type = static_cast<uint8_t>(body[0]);
  if (!KnownType(type)) {
    return Status::InvalidArgument("unknown frame type byte " +
                                   std::to_string(type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = body.substr(1);
  return frame;
}

std::string EncodeRequest(const RequestPayload& request) {
  std::string payload;
  payload.reserve(12 + request.statement.size());
  PutU64(&payload, request.id);
  PutU32(&payload, request.deadline_ms);
  payload.append(request.statement);
  return payload;
}

Result<RequestPayload> DecodeRequest(std::string_view payload) {
  if (payload.size() < 12) {
    return Status::InvalidArgument("request payload shorter than its header");
  }
  RequestPayload request;
  request.id = GetU64(payload.data());
  request.deadline_ms = GetU32(payload.data() + 8);
  request.statement.assign(payload.substr(12));
  return request;
}

std::string EncodeReply(const ReplyPayload& reply) {
  std::string payload;
  payload.reserve(12 + reply.text.size());
  PutU64(&payload, reply.id);
  PutU32(&payload, static_cast<uint32_t>(reply.code));
  payload.append(reply.text);
  return payload;
}

Result<ReplyPayload> DecodeReply(std::string_view payload) {
  if (payload.size() < 12) {
    return Status::InvalidArgument("reply payload shorter than its header");
  }
  ReplyPayload reply;
  reply.id = GetU64(payload.data());
  reply.code = static_cast<int32_t>(GetU32(payload.data() + 8));
  reply.text.assign(payload.substr(12));
  return reply;
}

}  // namespace viewauth
