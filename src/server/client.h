// Client side of the viewauth wire protocol.
//
// `Client` is one connection: connect, HELLO as a user, then Execute
// statements (each a request/reply round trip) or fetch the server's
// stats report. Any transport or protocol failure poisons the
// connection — the client closes its socket and every later call fails
// fast with the same kind of error.
//
// `RetryingClient` is the fault-tolerant wrapper the bench harness
// uses: it owns a connect factory and replays retryable failures
// (admission sheds, resets, server restarts) with capped exponential
// backoff, reconnecting as needed. Non-retryable outcomes — permission
// denials, parse errors, governed aborts — pass straight through.

#ifndef VIEWAUTH_SERVER_CLIENT_H_
#define VIEWAUTH_SERVER_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "common/socket.h"
#include "server/frame.h"

namespace viewauth {

struct ClientOptions {
  // Bounds each socket read/write; also the reply wait unless a request
  // carries its own deadline (then deadline + io_timeout_ms applies).
  long long io_timeout_ms = 10'000;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Client {
 public:
  // Connects, sends HELLO as `user`, and waits for the ack.
  static Result<std::unique_ptr<Client>> ConnectTcp(
      const std::string& host, int port, const std::string& user,
      ClientOptions options = {});
  static Result<std::unique_ptr<Client>> ConnectUnix(
      const std::string& path, const std::string& user,
      ClientOptions options = {});
  // Runs the HELLO handshake over an already-connected socket (tests
  // wrap fault-injecting sockets this way).
  static Result<std::unique_ptr<Client>> Wrap(std::unique_ptr<Socket> socket,
                                              const std::string& user,
                                              ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One statement; deadline_ms = 0 means the server default applies.
  // A non-OK reply code comes back as a Status with that code.
  Result<std::string> Execute(const std::string& statement,
                              uint32_t deadline_ms = 0);
  // The server's combined stats report.
  Result<std::string> Stats();
  // Best-effort goodbye frame + close; further calls fail.
  void Goodbye();

  // False once a transport/protocol failure has poisoned the connection.
  bool alive() const { return socket_ != nullptr; }

 private:
  Client(std::unique_ptr<Socket> socket, ClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  Status Hello(const std::string& user);
  // Sends one frame and reads the matching reply, enforcing ids.
  Result<ReplyPayload> RoundTrip(FrameType type, const std::string& payload,
                                 uint64_t expect_id, long long reply_wait_ms);
  void Poison();

  std::unique_ptr<Socket> socket_;
  ClientOptions options_;
  uint64_t next_id_ = 1;
};

struct RetryPolicy {
  int max_attempts = 5;
  long long base_backoff_ms = 5;
  long long max_backoff_ms = 500;
};

// Is this failure worth a retry? Transport losses (Unavailable — shed,
// reset, shutting down — and NotFound/Internal connection drops) are;
// semantic failures and governed aborts are not.
bool IsRetryable(const Status& status);

class RetryingClient {
 public:
  using ConnectFn = std::function<Result<std::unique_ptr<Client>>()>;

  RetryingClient(ConnectFn connect, RetryPolicy policy = {})
      : connect_(std::move(connect)), policy_(policy) {}

  // Executes with retries: a retryable failure reconnects if needed,
  // backs off exponentially (base * 2^attempt, capped), and tries
  // again up to max_attempts total attempts.
  Result<std::string> Execute(const std::string& statement,
                              uint32_t deadline_ms = 0);

  long long retries() const { return retries_; }
  long long reconnects() const { return reconnects_; }

 private:
  ConnectFn connect_;
  RetryPolicy policy_;
  std::unique_ptr<Client> client_;
  long long retries_ = 0;
  long long reconnects_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_SERVER_CLIENT_H_
