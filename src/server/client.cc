#include "server/client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace viewauth {

Result<std::unique_ptr<Client>> Client::ConnectTcp(const std::string& host,
                                                   int port,
                                                   const std::string& user,
                                                   ClientOptions options) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<Socket> socket,
                            viewauth::ConnectTcp(host, port,
                                                 options.io_timeout_ms));
  return Wrap(std::move(socket), user, options);
}

Result<std::unique_ptr<Client>> Client::ConnectUnix(const std::string& path,
                                                    const std::string& user,
                                                    ClientOptions options) {
  VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<Socket> socket,
                            viewauth::ConnectUnix(path, options.io_timeout_ms));
  return Wrap(std::move(socket), user, options);
}

Result<std::unique_ptr<Client>> Client::Wrap(std::unique_ptr<Socket> socket,
                                             const std::string& user,
                                             ClientOptions options) {
  std::unique_ptr<Client> client(new Client(std::move(socket), options));
  VIEWAUTH_RETURN_NOT_OK(client->Hello(user));
  return client;
}

Client::~Client() { Goodbye(); }

void Client::Poison() {
  if (socket_ != nullptr) {
    (void)socket_->Close();
    socket_.reset();
  }
}

Status Client::Hello(const std::string& user) {
  VIEWAUTH_ASSIGN_OR_RETURN(
      ReplyPayload ack,
      RoundTrip(FrameType::kHello, user, 0, options_.io_timeout_ms));
  if (ack.code != 0) {
    return Status(static_cast<StatusCode>(ack.code), ack.text);
  }
  return Status::OK();
}

Result<ReplyPayload> Client::RoundTrip(FrameType type,
                                       const std::string& payload,
                                       uint64_t expect_id,
                                       long long reply_wait_ms) {
  if (socket_ == nullptr) {
    return Status::Unavailable("client connection is closed");
  }
  Status sent = WriteFully(*socket_, EncodeFrame(type, payload),
                           options_.io_timeout_ms);
  if (!sent.ok()) {
    Poison();
    return sent;
  }
  // Replies arrive in request order (one session thread per
  // connection), so the next frame is ours.
  Result<Frame> read = ReadFrame(*socket_, options_.max_frame_bytes,
                                 reply_wait_ms, options_.io_timeout_ms);
  if (!read.ok()) {
    Poison();
    if (read.status().IsNotFound()) {
      return Status::Unavailable("server closed the connection");
    }
    return read.status();
  }
  if (read->type == FrameType::kError) {
    // Connection-fatal by contract: the server closes after sending it.
    Poison();
    return Status::Unavailable("server error: " + read->payload);
  }
  if (read->type != FrameType::kReply) {
    Poison();
    return Status::Internal("unexpected frame type from server");
  }
  VIEWAUTH_ASSIGN_OR_RETURN(ReplyPayload reply, DecodeReply(read->payload));
  if (reply.id != expect_id) {
    Poison();
    return Status::Internal("reply id " + std::to_string(reply.id) +
                            " does not match request id " +
                            std::to_string(expect_id));
  }
  return reply;
}

Result<std::string> Client::Execute(const std::string& statement,
                                    uint32_t deadline_ms) {
  RequestPayload request;
  request.id = next_id_++;
  request.deadline_ms = deadline_ms;
  request.statement = statement;
  // Wait out the statement's own deadline plus transport slack.
  const long long reply_wait =
      options_.io_timeout_ms +
      (deadline_ms > 0 ? static_cast<long long>(deadline_ms) : 0);
  VIEWAUTH_ASSIGN_OR_RETURN(
      ReplyPayload reply,
      RoundTrip(FrameType::kRequest, EncodeRequest(request), request.id,
                reply_wait));
  if (reply.code != 0) {
    return Status(static_cast<StatusCode>(reply.code), reply.text);
  }
  return reply.text;
}

Result<std::string> Client::Stats() {
  std::string payload(8, '\0');
  VIEWAUTH_ASSIGN_OR_RETURN(
      ReplyPayload reply,
      RoundTrip(FrameType::kStats, payload, 0, options_.io_timeout_ms));
  return reply.text;
}

void Client::Goodbye() {
  if (socket_ == nullptr) return;
  (void)WriteFully(*socket_, EncodeFrame(FrameType::kGoodbye, "bye"),
                   /*timeout_ms=*/250);
  Poison();
}

bool IsRetryable(const Status& status) {
  // Unavailable covers admission sheds, resets, degraded mode and
  // shutting-down replies; Internal/NotFound cover a connection that
  // died underneath the client. Governed aborts and semantic errors
  // would fail identically on replay.
  return status.IsUnavailable() || status.IsInternal() ||
         status.IsNotFound();
}

Result<std::string> RetryingClient::Execute(const std::string& statement,
                                            uint32_t deadline_ms) {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      long long backoff = policy_.base_backoff_ms;
      for (int i = 1; i < attempt; ++i) backoff *= 2;
      if (backoff > policy_.max_backoff_ms) backoff = policy_.max_backoff_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    if (client_ == nullptr || !client_->alive()) {
      Result<std::unique_ptr<Client>> connected = connect_();
      if (!connected.ok()) {
        last = connected.status();
        if (!IsRetryable(last)) return last;
        client_.reset();
        continue;
      }
      if (client_ != nullptr || attempt > 0) ++reconnects_;
      client_ = std::move(*connected);
    }
    Result<std::string> outcome = client_->Execute(statement, deadline_ms);
    if (outcome.ok()) return outcome;
    last = outcome.status();
    if (!IsRetryable(last)) return last;
  }
  return last;
}

}  // namespace viewauth
