// The length-prefixed wire frame of the viewauth protocol.
//
// Every message in either direction is one frame:
//
//   offset  size  field
//   0       4     body length N, uint32 little-endian (1 <= N <= cap)
//   4       4     CRC32 of the body, uint32 little-endian
//   8       N     body: 1 type byte + payload
//
// The length is validated against the frame cap BEFORE any allocation,
// so a hostile or corrupted length prefix cannot balloon memory; the
// CRC is validated after the body arrives, so a flipped bit anywhere in
// the body is detected before the payload is parsed. Both failures are
// protocol errors: the stream cannot be resynchronized afterwards and
// the connection must be closed (after a best-effort error frame).
//
// Frame types
//   'H' hello     client -> server   payload = user name
//   'Q' request   client -> server   payload = request header + statement
//   'S' stats     client -> server   payload = request id (8 bytes)
//   'B' goodbye   client -> server   empty payload; clean close
//   'R' reply     server -> client   payload = reply header + text
//   'E' error     server -> client   payload = message; connection-fatal
//
// Request payload:  u64 request id | u32 deadline_ms | statement text.
// Reply payload:    u64 request id | i32 status code | text (the result
//                   rendering when the code is 0/kOk, the error message
//                   otherwise).

#ifndef VIEWAUTH_SERVER_FRAME_H_
#define VIEWAUTH_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/socket.h"

namespace viewauth {

// Default hard cap on one frame's body (type byte + payload). Requests
// and replies share it; a reply that would exceed the cap is replaced
// by a structured "reply too large" error reply instead.
constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

constexpr size_t kFrameHeaderBytes = 8;

enum class FrameType : uint8_t {
  kHello = 'H',
  kRequest = 'Q',
  kStats = 'S',
  kGoodbye = 'B',
  kReply = 'R',
  kError = 'E',
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Serializes one frame (header + type + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

// Reads one frame. `first_byte_timeout_ms` bounds the wait for the
// frame to BEGIN (the idle/polling slice); `rest_timeout_ms` bounds the
// remainder once the first header byte arrived (a peer that starts a
// frame and stalls mid-way is a fault, not an idle client).
//
// Status contract:
//   NotFound          clean close at a frame boundary
//   DeadlineExceeded  nothing arrived within first_byte_timeout_ms
//   InvalidArgument   protocol error (oversized length, CRC mismatch,
//                     unknown type, zero-length body, mid-frame
//                     disconnect/stall) — connection-fatal
//   Unavailable       peer reset underneath us
Result<Frame> ReadFrame(Socket& socket, uint32_t max_frame_bytes,
                        long long first_byte_timeout_ms,
                        long long rest_timeout_ms);

struct RequestPayload {
  uint64_t id = 0;
  // 0 = no per-request deadline (the server default applies).
  uint32_t deadline_ms = 0;
  std::string statement;
};

std::string EncodeRequest(const RequestPayload& request);
Result<RequestPayload> DecodeRequest(std::string_view payload);

struct ReplyPayload {
  uint64_t id = 0;
  // A StatusCode as its integer value; 0 = OK.
  int32_t code = 0;
  std::string text;
};

std::string EncodeReply(const ReplyPayload& reply);
Result<ReplyPayload> DecodeReply(std::string_view payload);

}  // namespace viewauth

#endif  // VIEWAUTH_SERVER_FRAME_H_
