// Tests for the extended-mask delivery (paper conclusion (3)): masks
// "expressed with additional attributes".

#include <gtest/gtest.h>

#include "authz/authorizer.h"
#include "engine/engine.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

AuthorizationOptions Extended() {
  AuthorizationOptions options;
  options.extended_masks = true;
  return options;
}

// Brown asks for project numbers only. PSA restricts SPONSOR, which is
// not requested: the base algorithm must deny (the mask cannot be
// expressed with the requested attributes), the extension delivers the
// Acme numbers with a permit statement naming SPONSOR.
TEST(ExtendedMasks, RestrictionOnNonRequestedAttribute) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query("retrieve (PROJECT.NUMBER)");

  auto base = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base->denied);

  auto extended = authorizer.Retrieve("Brown", query, Extended());
  ASSERT_TRUE(extended.ok());
  EXPECT_FALSE(extended->denied);
  ASSERT_EQ(extended->answer.size(), 1);
  EXPECT_TRUE(extended->answer.Contains(Tuple({Value::String("bq-45")})));
  ASSERT_EQ(extended->permits.size(), 1u);
  EXPECT_EQ(extended->permits[0].ToString(),
            "permit (NUMBER) where SPONSOR = Acme");
}

// The hospital scenario: the view restricts WARD (not projected); a
// query silent about the ward is denied by the base algorithm but
// delivered (ward-filtered) by the extension.
TEST(ExtendedMasks, ViewPredicateBecomesRowFilter) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PATIENT (ID int key, NAME string, WARD string, AGE int)
    relation RECORD (PATIENT_ID int key, DIAGNOSIS string)
    insert into PATIENT values (1, Adams, cardiology, 71)
    insert into PATIENT values (2, Baker, oncology, 58)
    insert into RECORD values (1, arrhythmia)
    insert into RECORD values (2, lymphoma)
    view CARDIO (PATIENT.ID, PATIENT.NAME, RECORD.DIAGNOSIS)
      where PATIENT.ID = RECORD.PATIENT_ID
      and PATIENT.WARD = cardiology
    permit CARDIO to assistant
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  const char* query =
      "retrieve (PATIENT.NAME, RECORD.DIAGNOSIS) "
      "where PATIENT.ID = RECORD.PATIENT_ID as assistant";

  auto base = engine.Execute(query);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(engine.last_result()->denied);

  engine.options().extended_masks = true;
  auto extended = engine.Execute(query);
  ASSERT_TRUE(extended.ok());
  const AuthorizationResult* result = engine.last_result();
  EXPECT_FALSE(result->denied);
  ASSERT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Adams"), Value::String("arrhythmia")})));
  ASSERT_EQ(result->permits.size(), 1u);
  EXPECT_EQ(result->permits[0].ToString(),
            "permit (NAME, DIAGNOSIS) where PATIENT.WARD = cardiology");
}

// Queries fully inside a permitted view behave identically in both
// modes: full access, no permit statements.
TEST(ExtendedMasks, FullAccessUnchanged) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
      "where PROJECT.SPONSOR = Acme");
  auto extended = authorizer.Retrieve("Brown", query, Extended());
  ASSERT_TRUE(extended.ok());
  EXPECT_FALSE(extended->denied);
  EXPECT_TRUE(extended->full_access);
  EXPECT_TRUE(extended->permits.empty());
  EXPECT_EQ(extended->answer.size(), 1);
}

// The paper's Examples 1 and 2 deliver identical results under the
// extension (their masks never need extra attributes).
TEST(ExtendedMasks, PaperExamplesUnchanged) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();

  ConjunctiveQuery example1 = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000");
  auto base1 = authorizer.Retrieve("Brown", example1);
  auto ext1 = authorizer.Retrieve("Brown", example1, Extended());
  ASSERT_TRUE(base1.ok());
  ASSERT_TRUE(ext1.ok());
  EXPECT_TRUE(base1->answer.SameTuples(ext1->answer));

  ConjunctiveQuery example2 = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");
  auto base2 = authorizer.Retrieve("Klein", example2);
  auto ext2 = authorizer.Retrieve("Klein", example2, Extended());
  ASSERT_TRUE(base2.ok());
  ASSERT_TRUE(ext2.ok());
  EXPECT_TRUE(base2->answer.SameTuples(ext2->answer));
}

// Denials remain denials when no view covers the request at all.
TEST(ExtendedMasks, StillDeniedWithoutCoverage) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query("retrieve (PROJECT.NUMBER)");
  auto result = authorizer.Retrieve("Klein", query, Extended());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->denied);
}

// The extension never delivers fewer cells than the base algorithm.
TEST(ExtendedMasks, ExtensionIsMonotone) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  const char* queries[] = {
      "retrieve (PROJECT.NUMBER)",
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)",
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET >= 250000",
  };
  auto delivered_cells = [](const Relation& relation) {
    long long count = 0;
    for (const Tuple& row : relation.rows()) {
      for (const Value& value : row.values()) {
        if (!value.is_null()) ++count;
      }
    }
    return count;
  };
  for (const char* text : queries) {
    for (const char* user : {"Brown", "Klein"}) {
      ConjunctiveQuery query = fixture.Query(text);
      auto base = authorizer.Retrieve(user, query);
      auto extended = authorizer.Retrieve(user, query, Extended());
      ASSERT_TRUE(base.ok()) << text;
      ASSERT_TRUE(extended.ok()) << text;
      EXPECT_GE(delivered_cells(extended->answer),
                delivered_cells(base->answer))
          << user << ": " << text;
    }
  }
}

}  // namespace
}  // namespace viewauth
