// The authorization cache: hits on repeated queries, invalidation on
// every entitlement-changing event (permit, deny, view drop/redefinition,
// DDL), per-user isolation, and the generation-counter soundness argument
// for callers that mutate the catalog directly (no engine involved).

#include <string>

#include <gtest/gtest.h>

#include "authz/authorizer.h"
#include "authz/authz_cache.h"
#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

// An engine with the test schema loaded: EMPLOYEE(NAME key, SALARY) with
// two rows, a NAME-only view granted to Brown.
void SetupEngine(Engine* engine) {
  auto out = engine->ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, SALARY int)
    insert into EMPLOYEE values (Jones, 26000)
    insert into EMPLOYEE values (Smith, 22000)
    view NAMES (EMPLOYEE.NAME)
    permit NAMES to Brown
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  engine->ResetAuthzStats();
}

constexpr const char* kQuery =
    "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown";

TEST(AuthzCacheTest, RepeatQueryHitsMaskCache) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 1);
  EXPECT_EQ(stats.mask_misses, 1);
  EXPECT_EQ(stats.mask_hits, 0);
  EXPECT_EQ(stats.prepared_misses, 1);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2);
  EXPECT_EQ(stats.mask_misses, 1);
  // The repeat is served from the mask cache, before the prepared layer
  // is even consulted.
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_EQ(stats.prepared_hits, 0);
}

TEST(AuthzCacheTest, PermitInvalidatesAndWidensDelivery) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_FALSE(engine.last_result()->full_access);

  // A new grant must be visible immediately: the cached NAME-only mask
  // may not be served again.
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                  .ok());
  EXPECT_GE(engine.authz_stats().invalidations, 1);
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  EXPECT_EQ(engine.authz_stats().mask_hits, 0);
  EXPECT_EQ(engine.authz_stats().mask_misses, 2);
}

TEST(AuthzCacheTest, DenyInvalidatesAndNarrowsDelivery) {
  Engine engine;
  SetupEngine(&engine);
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                  .ok());

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);

  ASSERT_TRUE(engine.Execute("deny ALL_E to Brown").ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  // Back to the NAME-only view: the stale full-access mask was dropped.
  EXPECT_FALSE(engine.last_result()->full_access);
  EXPECT_FALSE(engine.last_result()->denied);
}

TEST(AuthzCacheTest, ViewRedefinitionInvalidates) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);

  // Redefine NAMES to cover both columns; the regrant and new definition
  // must take effect on the very next retrieve.
  ASSERT_TRUE(engine.Execute("drop view NAMES").ok());
  ASSERT_TRUE(engine
                  .ExecuteScript("view NAMES (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit NAMES to Brown")
                  .ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
}

TEST(AuthzCacheTest, DdlInvalidates) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  const long long before = engine.authz_stats().invalidations;
  ASSERT_TRUE(
      engine.Execute("relation DEPT (DNAME string key, HEAD string)").ok());
  EXPECT_GT(engine.authz_stats().invalidations, before);
  // The repeat after DDL re-derives.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_EQ(engine.authz_stats().mask_hits, 0);
  EXPECT_EQ(engine.authz_stats().mask_misses, 2);
}

TEST(AuthzCacheTest, PerUserIsolation) {
  Engine engine;
  SetupEngine(&engine);
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Klein")
                  .ok());
  engine.ResetAuthzStats();

  // Same query text, different users: distinct cache entries, distinct
  // masks.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_misses, 2);
  EXPECT_EQ(stats.mask_hits, 0);

  // Each user's repeat hits their own entry and keeps their own mask.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_misses, 2);
  EXPECT_EQ(stats.mask_hits, 2);
}

TEST(AuthzCacheTest, StatsCountersAreConsistent) {
  Engine engine;
  SetupEngine(&engine);

  constexpr int kRepeats = 5;
  for (int i = 0; i < kRepeats; ++i) {
    ASSERT_TRUE(engine.Execute(kQuery).ok());
  }
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, kRepeats);
  EXPECT_EQ(stats.parallel_retrieves, kRepeats);
  EXPECT_EQ(stats.mask_hits + stats.mask_misses, kRepeats);
  EXPECT_EQ(stats.mask_misses, 1);
  EXPECT_GE(stats.total_micros, stats.mask_apply_micros);
  EXPECT_FALSE(stats.ToString().empty());

  engine.ResetAuthzStats();
  const AuthzStats zeroed = engine.authz_stats();
  EXPECT_EQ(zeroed.retrieves, 0);
  EXPECT_EQ(zeroed.mask_hits, 0);
  EXPECT_EQ(zeroed.total_micros, 0);
}

TEST(AuthzCacheTest, CacheDisabledOptionBypassesCache) {
  Engine engine;
  SetupEngine(&engine);
  engine.options().enable_authz_cache = false;

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2);
  EXPECT_EQ(stats.mask_hits, 0);
  EXPECT_EQ(stats.mask_misses, 0);
  EXPECT_EQ(stats.prepared_hits, 0);
  EXPECT_EQ(stats.prepared_misses, 0);
}

// The soundness backstop: callers that bypass the engine and mutate the
// catalog (or schema) directly never see a stale entry, because every
// entry is generation-checked at lookup.
TEST(AuthzCacheTest, DirectCatalogMutationIsCaughtByGenerationCheck) {
  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "EMPLOYEE",
                                    {{"NAME", ValueType::kString},
                                     {"SALARY", ValueType::kInt64}},
                                    {0})
                                    .value())
                  .ok());
  ASSERT_TRUE(
      db.Insert("EMPLOYEE",
                Tuple({Value::String("Jones"), Value::Int64(26000)}))
          .ok());
  ViewCatalog catalog(&db.schema());
  auto parse_view = [&](const std::string& text) {
    auto stmt = ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    return std::get<ViewStmt>(*stmt);
  };
  ASSERT_TRUE(catalog.DefineView(parse_view("view NAMES (EMPLOYEE.NAME)"))
                  .ok());
  ASSERT_TRUE(catalog.Permit("NAMES", "Brown").ok());

  AuthzCache cache;
  Authorizer authorizer(&db, &catalog, &cache);
  auto stmt = ParseStatement("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_TRUE(stmt.ok());
  auto query = ConjunctiveQuery::FromRetrieve(db.schema(),
                                              std::get<RetrieveStmt>(*stmt));
  ASSERT_TRUE(query.ok());

  auto first = authorizer.Retrieve("Brown", *query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->full_access);

  // Direct catalog mutation — no engine, nobody calls Invalidate().
  ASSERT_TRUE(catalog
                  .DefineView(parse_view(
                      "view ALL_E (EMPLOYEE.NAME, EMPLOYEE.SALARY)"))
                  .ok());
  ASSERT_TRUE(catalog.Permit("ALL_E", "Brown").ok());

  auto second = authorizer.Retrieve("Brown", *query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->full_access);
  // The stale entry was detected and dropped at lookup.
  EXPECT_GE(cache.Snapshot().invalidations, 1);
}

// ---------------------------------------------------------------------
// Selective (dependency-tracked) invalidation precision: each mutation
// kind drops exactly the dependent entries and retains the rest, with
// the exact/over counters distinguishing targeted events from wipes.
// ---------------------------------------------------------------------

// Two relations and two users, both with warmed cache entries, so every
// precision test below can assert both the drop AND the retention side.
void SetupTwoRelationEngine(Engine* engine) {
  auto out = engine->ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, SALARY int)
    relation DEPT (DNAME string key, BUDGET int)
    insert into EMPLOYEE values (Jones, 26000)
    insert into EMPLOYEE values (Smith, 22000)
    insert into DEPT values (eng, 500000)
    view NAMES (EMPLOYEE.NAME)
    view DEPTS (DEPT.DNAME)
    permit NAMES to Brown
    permit DEPTS to Klein
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  engine->ResetAuthzStats();
}

constexpr const char* kEmpQueryBrown =
    "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown";
constexpr const char* kDeptQueryKlein =
    "retrieve (DEPT.DNAME, DEPT.BUDGET) as Klein";

TEST(AuthzCacheTest, PermitInvalidatesOnlyTheGranteesEntries) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());

  // A new EMPLOYEE grant to Brown: Brown's EMPLOYEE entries must drop,
  // Klein's DEPT entries must survive.
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                  .ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.invalidations_exact, 1);
  EXPECT_EQ(stats.invalidations_over, 0);
  EXPECT_GE(stats.entries_invalidated, 1);
  EXPECT_GE(stats.entries_retained, 1);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());
  stats = engine.authz_stats();
  // Brown re-derived (miss #3); Klein's repeat rode the retained entry.
  EXPECT_EQ(stats.mask_misses, 3);
  EXPECT_EQ(stats.mask_hits, 1);
}

TEST(AuthzCacheTest, PermitOutsideTheEntriesScopeRetainsThem) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());

  // A DEPT-only grant to Brown: the grant's scope {DEPT} is no subset of
  // the cached entry's read set {EMPLOYEE}, so the entry survives even
  // though user and event-user coincide.
  ASSERT_TRUE(engine.Execute("permit DEPTS to Brown").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.invalidations_exact, 1);
  EXPECT_EQ(stats.entries_invalidated, 0);
  EXPECT_GE(stats.entries_retained, 1);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.mask_misses, 1);
}

TEST(AuthzCacheTest, NonRetrieveModeGrantDropsNothing) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());

  // Insert-mode grants never feed retrieve-time masks; the journal
  // records them with an empty scope list and nothing drops.
  ASSERT_TRUE(engine.Execute("permit NAMES to Brown for insert").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.entries_invalidated, 0);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.mask_misses, 1);
}

TEST(AuthzCacheTest, DataMutationsDropNothing) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());

  // Inserts change data, not entitlements: masks stay valid and are
  // reapplied to the new rows.
  ASSERT_TRUE(
      engine.Execute("insert into EMPLOYEE values (Davis, 31000)").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.invalidations, 0);
  EXPECT_EQ(stats.entries_invalidated, 0);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.mask_misses, 1);
  // The masked answer does include the new row (3 rows, NAME visible).
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_EQ(engine.last_result()->answer.size(), 3u);
}

TEST(AuthzCacheTest, FreshViewDefinitionDropsNothing) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());

  // A brand-new view has no grants: no user can be affected yet.
  ASSERT_TRUE(
      engine.Execute("view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.entries_invalidated, 0);
  EXPECT_EQ(stats.invalidations_over, 0);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.mask_misses, 1);
}

TEST(AuthzCacheTest, DropViewInvalidatesHoldersAndRetainsOthers) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());

  // Dropping NAMES affects its holder Brown (scope {EMPLOYEE}); Klein's
  // DEPT entries must survive.
  ASSERT_TRUE(engine.Execute("drop view NAMES").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.invalidations_exact, 1);
  EXPECT_EQ(stats.invalidations_over, 0);
  EXPECT_GE(stats.entries_invalidated, 1);
  EXPECT_GE(stats.entries_retained, 1);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  EXPECT_TRUE(engine.last_result()->denied);  // grant went with the view
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);  // Klein's repeat, from the cache
}

TEST(AuthzCacheTest, MultiRelationViewGrantInvalidatesCoveringEntry) {
  Engine engine;
  SetupTwoRelationEngine(&engine);

  // Warm a cross-relation entry for Brown: its read set is
  // {EMPLOYEE, DEPT}, so it embeds grants whose scope is either side.
  ASSERT_TRUE(engine
                  .Execute("retrieve (EMPLOYEE.NAME, DEPT.DNAME) as Brown")
                  .ok());
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());

  // A DEPT-scoped grant to Brown must drop the covering entry (scope
  // {DEPT} IS a subset of {EMPLOYEE, DEPT}) while Klein's is retained.
  ASSERT_TRUE(engine.Execute("permit DEPTS to Brown").ok());
  const AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.entries_invalidated, 1);
  EXPECT_GE(stats.entries_retained, 1);

  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());
  EXPECT_EQ(engine.authz_stats().mask_hits, 1);
}

TEST(AuthzCacheTest, DdlCountsAsOverInvalidation) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());

  // Relation DDL rewrites the schema universe: the cache takes the full
  // wipe and books it as an over-invalidation, not an exact one.
  ASSERT_TRUE(
      engine.Execute("relation LOC (CITY string key, REGION string)").ok());
  const AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.invalidations_over, 1);
  EXPECT_GE(stats.entries_invalidated, 1);
  EXPECT_EQ(stats.invalidations_exact, 0);
}

TEST(AuthzCacheTest, MembershipChangeInvalidatesOnlyTheMember) {
  Engine engine;
  SetupTwoRelationEngine(&engine);
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "view ALL_E (EMPLOYEE.NAME, EMPLOYEE.SALARY)\n"
                      "permit ALL_E to staff\n"
                      "member Brown of staff")
                  .ok());
  engine.ResetAuthzStats();
  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());

  // Brown leaves staff: only Brown's EMPLOYEE entries drop.
  ASSERT_TRUE(engine.Execute("unmember Brown of staff").ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_GE(stats.invalidations_exact, 1);
  EXPECT_GE(stats.entries_invalidated, 1);
  EXPECT_GE(stats.entries_retained, 1);

  ASSERT_TRUE(engine.Execute(kEmpQueryBrown).ok());
  EXPECT_FALSE(engine.last_result()->full_access);  // NAMES only again
  ASSERT_TRUE(engine.Execute(kDeptQueryKlein).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_hits, 1);  // Klein retained
}

// The governor abort pattern applied to the dependency index: an aborted
// retrieve must stage neither cache entries nor dependency edges, so a
// subsequent targeted mutation books identical precision counters on the
// subject and on a control that never ran the aborted retrieve.
TEST(AuthzCacheTest, AbortedRetrieveStagesNoDependencyEdges) {
  Engine control;
  SetupTwoRelationEngine(&control);
  Engine subject;
  SetupTwoRelationEngine(&subject);

  subject.options().max_rows = 1;  // guarantees a budget abort
  auto aborted = subject.Execute(kEmpQueryBrown);
  ASSERT_FALSE(aborted.ok());
  ASSERT_TRUE(aborted.status().IsResourceExhausted()) << aborted.status();
  subject.options().max_rows = 0;

  // Both engines warm the same entries, then take the same targeted
  // mutation. If the abort had leaked dependency edges, the subject's
  // drop/retain tallies would differ here.
  for (Engine* engine : {&control, &subject}) {
    ASSERT_TRUE(engine->Execute(kEmpQueryBrown).ok());
    ASSERT_TRUE(engine->Execute(kDeptQueryKlein).ok());
    ASSERT_TRUE(engine
                    ->ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                    "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                    .ok());
  }
  const AuthzStats s = subject.authz_stats();
  const AuthzStats c = control.authz_stats();
  EXPECT_EQ(s.entries_invalidated, c.entries_invalidated);
  EXPECT_EQ(s.entries_retained, c.entries_retained);
  EXPECT_EQ(s.invalidations_exact, c.invalidations_exact);
  EXPECT_EQ(s.invalidations_over, c.invalidations_over);
  EXPECT_EQ(s.invalidations, c.invalidations);

  auto subject_out = subject.Execute(kEmpQueryBrown);
  auto control_out = control.Execute(kEmpQueryBrown);
  ASSERT_TRUE(subject_out.ok());
  ASSERT_TRUE(control_out.ok());
  EXPECT_EQ(*subject_out, *control_out);
  EXPECT_EQ(subject.authz_stats().mask_hits, control.authz_stats().mask_hits);
  EXPECT_EQ(subject.authz_stats().mask_misses,
            control.authz_stats().mask_misses);
}

}  // namespace
}  // namespace viewauth
