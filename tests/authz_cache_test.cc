// The authorization cache: hits on repeated queries, invalidation on
// every entitlement-changing event (permit, deny, view drop/redefinition,
// DDL), per-user isolation, and the generation-counter soundness argument
// for callers that mutate the catalog directly (no engine involved).

#include <string>

#include <gtest/gtest.h>

#include "authz/authorizer.h"
#include "authz/authz_cache.h"
#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

// An engine with the test schema loaded: EMPLOYEE(NAME key, SALARY) with
// two rows, a NAME-only view granted to Brown.
void SetupEngine(Engine* engine) {
  auto out = engine->ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, SALARY int)
    insert into EMPLOYEE values (Jones, 26000)
    insert into EMPLOYEE values (Smith, 22000)
    view NAMES (EMPLOYEE.NAME)
    permit NAMES to Brown
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  engine->ResetAuthzStats();
}

constexpr const char* kQuery =
    "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown";

TEST(AuthzCacheTest, RepeatQueryHitsMaskCache) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 1);
  EXPECT_EQ(stats.mask_misses, 1);
  EXPECT_EQ(stats.mask_hits, 0);
  EXPECT_EQ(stats.prepared_misses, 1);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2);
  EXPECT_EQ(stats.mask_misses, 1);
  // The repeat is served from the mask cache, before the prepared layer
  // is even consulted.
  EXPECT_EQ(stats.mask_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_EQ(stats.prepared_hits, 0);
}

TEST(AuthzCacheTest, PermitInvalidatesAndWidensDelivery) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_FALSE(engine.last_result()->full_access);

  // A new grant must be visible immediately: the cached NAME-only mask
  // may not be served again.
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                  .ok());
  EXPECT_GE(engine.authz_stats().invalidations, 1);
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  EXPECT_EQ(engine.authz_stats().mask_hits, 0);
  EXPECT_EQ(engine.authz_stats().mask_misses, 2);
}

TEST(AuthzCacheTest, DenyInvalidatesAndNarrowsDelivery) {
  Engine engine;
  SetupEngine(&engine);
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Brown")
                  .ok());

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);

  ASSERT_TRUE(engine.Execute("deny ALL_E to Brown").ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  // Back to the NAME-only view: the stale full-access mask was dropped.
  EXPECT_FALSE(engine.last_result()->full_access);
  EXPECT_FALSE(engine.last_result()->denied);
}

TEST(AuthzCacheTest, ViewRedefinitionInvalidates) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);

  // Redefine NAMES to cover both columns; the regrant and new definition
  // must take effect on the very next retrieve.
  ASSERT_TRUE(engine.Execute("drop view NAMES").ok());
  ASSERT_TRUE(engine
                  .ExecuteScript("view NAMES (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit NAMES to Brown")
                  .ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_TRUE(engine.last_result()->full_access);
}

TEST(AuthzCacheTest, DdlInvalidates) {
  Engine engine;
  SetupEngine(&engine);

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  const long long before = engine.authz_stats().invalidations;
  ASSERT_TRUE(
      engine.Execute("relation DEPT (DNAME string key, HEAD string)").ok());
  EXPECT_GT(engine.authz_stats().invalidations, before);
  // The repeat after DDL re-derives.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_EQ(engine.authz_stats().mask_hits, 0);
  EXPECT_EQ(engine.authz_stats().mask_misses, 2);
}

TEST(AuthzCacheTest, PerUserIsolation) {
  Engine engine;
  SetupEngine(&engine);
  ASSERT_TRUE(engine
                  .ExecuteScript("view ALL_E (EMPLOYEE.NAME, "
                                 "EMPLOYEE.SALARY)\npermit ALL_E to Klein")
                  .ok());
  engine.ResetAuthzStats();

  // Same query text, different users: distinct cache entries, distinct
  // masks.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_misses, 2);
  EXPECT_EQ(stats.mask_hits, 0);

  // Each user's repeat hits their own entry and keeps their own mask.
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  EXPECT_FALSE(engine.last_result()->full_access);
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  EXPECT_TRUE(engine.last_result()->full_access);
  stats = engine.authz_stats();
  EXPECT_EQ(stats.mask_misses, 2);
  EXPECT_EQ(stats.mask_hits, 2);
}

TEST(AuthzCacheTest, StatsCountersAreConsistent) {
  Engine engine;
  SetupEngine(&engine);

  constexpr int kRepeats = 5;
  for (int i = 0; i < kRepeats; ++i) {
    ASSERT_TRUE(engine.Execute(kQuery).ok());
  }
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, kRepeats);
  EXPECT_EQ(stats.parallel_retrieves, kRepeats);
  EXPECT_EQ(stats.mask_hits + stats.mask_misses, kRepeats);
  EXPECT_EQ(stats.mask_misses, 1);
  EXPECT_GE(stats.total_micros, stats.mask_apply_micros);
  EXPECT_FALSE(stats.ToString().empty());

  engine.ResetAuthzStats();
  const AuthzStats zeroed = engine.authz_stats();
  EXPECT_EQ(zeroed.retrieves, 0);
  EXPECT_EQ(zeroed.mask_hits, 0);
  EXPECT_EQ(zeroed.total_micros, 0);
}

TEST(AuthzCacheTest, CacheDisabledOptionBypassesCache) {
  Engine engine;
  SetupEngine(&engine);
  engine.options().enable_authz_cache = false;

  ASSERT_TRUE(engine.Execute(kQuery).ok());
  ASSERT_TRUE(engine.Execute(kQuery).ok());
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2);
  EXPECT_EQ(stats.mask_hits, 0);
  EXPECT_EQ(stats.mask_misses, 0);
  EXPECT_EQ(stats.prepared_hits, 0);
  EXPECT_EQ(stats.prepared_misses, 0);
}

// The soundness backstop: callers that bypass the engine and mutate the
// catalog (or schema) directly never see a stale entry, because every
// entry is generation-checked at lookup.
TEST(AuthzCacheTest, DirectCatalogMutationIsCaughtByGenerationCheck) {
  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "EMPLOYEE",
                                    {{"NAME", ValueType::kString},
                                     {"SALARY", ValueType::kInt64}},
                                    {0})
                                    .value())
                  .ok());
  ASSERT_TRUE(
      db.Insert("EMPLOYEE",
                Tuple({Value::String("Jones"), Value::Int64(26000)}))
          .ok());
  ViewCatalog catalog(&db.schema());
  auto parse_view = [&](const std::string& text) {
    auto stmt = ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    return std::get<ViewStmt>(*stmt);
  };
  ASSERT_TRUE(catalog.DefineView(parse_view("view NAMES (EMPLOYEE.NAME)"))
                  .ok());
  ASSERT_TRUE(catalog.Permit("NAMES", "Brown").ok());

  AuthzCache cache;
  Authorizer authorizer(&db, &catalog, &cache);
  auto stmt = ParseStatement("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_TRUE(stmt.ok());
  auto query = ConjunctiveQuery::FromRetrieve(db.schema(),
                                              std::get<RetrieveStmt>(*stmt));
  ASSERT_TRUE(query.ok());

  auto first = authorizer.Retrieve("Brown", *query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->full_access);

  // Direct catalog mutation — no engine, nobody calls Invalidate().
  ASSERT_TRUE(catalog
                  .DefineView(parse_view(
                      "view ALL_E (EMPLOYEE.NAME, EMPLOYEE.SALARY)"))
                  .ok());
  ASSERT_TRUE(catalog.Permit("ALL_E", "Brown").ok());

  auto second = authorizer.Retrieve("Brown", *query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->full_access);
  // The stale entry was detected and dropped at lookup.
  EXPECT_GE(cache.Snapshot().invalidations, 1);
}

}  // namespace
}  // namespace viewauth
