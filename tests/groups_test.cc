// Tests for group membership: grants to groups apply to their members.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

class GroupsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, SALARY int)
      insert into EMPLOYEE values (Jones, 26000)
      view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      permit SAE to hr_team
      member alice of hr_team
      member bob of hr_team
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  bool Denied(const char* query) {
    auto out = engine_.Execute(query);
    EXPECT_TRUE(out.ok()) << out.status();
    return engine_.last_result()->denied;
  }

  Engine engine_;
};

TEST_F(GroupsTest, Parsing) {
  auto add = ParseStatement("member u of g");
  ASSERT_TRUE(add.ok());
  EXPECT_FALSE(std::get<MemberStmt>(*add).remove);
  EXPECT_EQ(std::get<MemberStmt>(*add).ToString(), "member u of g");
  auto remove = ParseStatement("unmember u of g");
  ASSERT_TRUE(remove.ok());
  EXPECT_TRUE(std::get<MemberStmt>(*remove).remove);
  EXPECT_FALSE(ParseStatement("member u g").ok());
}

TEST_F(GroupsTest, MembersInheritGroupGrants) {
  EXPECT_FALSE(Denied("retrieve (EMPLOYEE.NAME) as alice"));
  EXPECT_FALSE(Denied("retrieve (EMPLOYEE.NAME) as bob"));
  EXPECT_TRUE(Denied("retrieve (EMPLOYEE.NAME) as carol"));
  EXPECT_TRUE(engine_.catalog().IsPermitted("alice", "SAE"));
  EXPECT_TRUE(engine_.catalog().IsMember("alice", "hr_team"));
  EXPECT_FALSE(engine_.catalog().IsMember("carol", "hr_team"));
}

TEST_F(GroupsTest, UnmemberRevokesInheritedAccess) {
  ASSERT_TRUE(engine_.Execute("unmember alice of hr_team").ok());
  EXPECT_TRUE(Denied("retrieve (EMPLOYEE.NAME) as alice"));
  EXPECT_FALSE(Denied("retrieve (EMPLOYEE.NAME) as bob"));
  EXPECT_TRUE(
      engine_.Execute("unmember alice of hr_team").status().IsNotFound());
}

TEST_F(GroupsTest, DirectAndGroupGrantsDoNotDuplicateViews) {
  ASSERT_TRUE(engine_.Execute("permit SAE to alice").ok());
  // One view despite two applicable grants.
  EXPECT_EQ(engine_.catalog().PermittedViews("alice").size(), 1u);
  EXPECT_FALSE(Denied("retrieve (EMPLOYEE.NAME) as alice"));
}

TEST_F(GroupsTest, GroupCannotContainItself) {
  EXPECT_TRUE(
      engine_.Execute("member g of g").status().IsInvalidArgument());
}

TEST_F(GroupsTest, MembershipSurvivesDumpReplay) {
  auto dump = engine_.DumpScript();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("member alice of hr_team"), std::string::npos);
  Engine restored;
  ASSERT_TRUE(restored.ExecuteScript(*dump).ok()) << *dump;
  auto out = restored.Execute("retrieve (EMPLOYEE.NAME) as alice");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(restored.last_result()->denied);
}

TEST_F(GroupsTest, UpdateModesWorkThroughGroups) {
  ASSERT_TRUE(engine_.Execute("permit SAE to hr_team for insert").ok());
  EXPECT_TRUE(engine_
                  .Execute("insert into EMPLOYEE values (Nora, 1000) "
                           "as alice")
                  .ok());
  EXPECT_TRUE(engine_
                  .Execute("insert into EMPLOYEE values (Zed, 1) as carol")
                  .status()
                  .IsPermissionDenied());
}

}  // namespace
}  // namespace viewauth
