// Unit tests for the System R authorization baseline (Griffiths & Wade),
// including the recursive revocation semantics.

#include "baselines/systemr/grant_table.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_util.h"

namespace viewauth {
namespace systemr {
namespace {

using testing_util::PaperDatabase;
using Priv = Privilege;

class SystemRTest : public ::testing::Test {
 protected:
  SystemRTest() : authorizer_(&fixture_.db().schema()) {
    VIEWAUTH_TEST_OK(authorizer_.RegisterTable("EMPLOYEE", "dba"));
    VIEWAUTH_TEST_OK(authorizer_.RegisterTable("PROJECT", "dba"));
    VIEWAUTH_TEST_OK(authorizer_.RegisterTable("ASSIGNMENT", "dba"));
  }

  ConjunctiveQuery Query(const std::string& text) {
    return fixture_.Query(text);
  }

  PaperDatabase fixture_;
  SystemRAuthorizer authorizer_;
};

TEST_F(SystemRTest, OwnerHoldsEverything) {
  EXPECT_TRUE(authorizer_.HasPrivilege("dba", "EMPLOYEE", Priv::kRead));
  EXPECT_TRUE(
      authorizer_.HasPrivilege("dba", "EMPLOYEE", Priv::kRead, true));
  EXPECT_FALSE(authorizer_.HasPrivilege("ann", "EMPLOYEE", Priv::kRead));
}

TEST_F(SystemRTest, GrantRequiresGrantOption) {
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, false).ok());
  EXPECT_TRUE(authorizer_.HasPrivilege("ann", "EMPLOYEE", Priv::kRead));
  // Ann has no grant option: she cannot re-grant.
  EXPECT_TRUE(authorizer_.Grant("ann", "bob", "EMPLOYEE", Priv::kRead, false)
                  .IsPermissionDenied());
  // Granting on unknown objects fails.
  EXPECT_TRUE(authorizer_.Grant("dba", "ann", "NOPE", Priv::kRead, false)
                  .IsNotFound());
}

TEST_F(SystemRTest, GrantChains) {
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("ann", "bob", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("bob", "cal", "EMPLOYEE", Priv::kRead, false).ok());
  EXPECT_TRUE(authorizer_.HasPrivilege("cal", "EMPLOYEE", Priv::kRead));
}

TEST_F(SystemRTest, RecursiveRevokeCascades) {
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("ann", "bob", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("bob", "cal", "EMPLOYEE", Priv::kRead, false).ok());
  ASSERT_TRUE(authorizer_.Revoke("dba", "ann", "EMPLOYEE", Priv::kRead).ok());
  // The whole chain collapses.
  EXPECT_FALSE(authorizer_.HasPrivilege("ann", "EMPLOYEE", Priv::kRead));
  EXPECT_FALSE(authorizer_.HasPrivilege("bob", "EMPLOYEE", Priv::kRead));
  EXPECT_FALSE(authorizer_.HasPrivilege("cal", "EMPLOYEE", Priv::kRead));
}

TEST_F(SystemRTest, TimestampSemantics) {
  // Bob receives from Ann (t2) and later directly from dba (t4); Cal's
  // grant from Bob at t3 predates Bob's direct grant, so revoking Ann
  // invalidates Cal's grant (Griffiths-Wade: support must be earlier).
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("ann", "bob", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(
      authorizer_.Grant("bob", "cal", "EMPLOYEE", Priv::kRead, false).ok());
  ASSERT_TRUE(
      authorizer_.Grant("dba", "bob", "EMPLOYEE", Priv::kRead, true).ok());
  ASSERT_TRUE(authorizer_.Revoke("dba", "ann", "EMPLOYEE", Priv::kRead).ok());
  EXPECT_TRUE(authorizer_.HasPrivilege("bob", "EMPLOYEE", Priv::kRead));
  EXPECT_FALSE(authorizer_.HasPrivilege("cal", "EMPLOYEE", Priv::kRead));
  // Bob re-grants afterwards: now supported.
  ASSERT_TRUE(
      authorizer_.Grant("bob", "cal", "EMPLOYEE", Priv::kRead, false).ok());
  EXPECT_TRUE(authorizer_.HasPrivilege("cal", "EMPLOYEE", Priv::kRead));
}

TEST_F(SystemRTest, RevokeUnknownGrantFails) {
  EXPECT_TRUE(authorizer_.Revoke("dba", "ann", "EMPLOYEE", Priv::kRead)
                  .IsNotFound());
}

TEST_F(SystemRTest, QueryCheckIsAllOrNothing) {
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, false).ok());
  EXPECT_TRUE(
      authorizer_.CheckQuery("ann", Query("retrieve (EMPLOYEE.NAME)")).ok());
  // Any unreadable relation rejects the whole query.
  EXPECT_TRUE(authorizer_
                  .CheckQuery("ann",
                              Query("retrieve (EMPLOYEE.NAME, "
                                    "PROJECT.NUMBER)"))
                  .IsPermissionDenied());
}

TEST_F(SystemRTest, ViewsAreAccessWindows) {
  ConjunctiveQuery def = Query(
      "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER");
  ASSERT_TRUE(authorizer_.RegisterView("EP", "dba", def).ok());
  ASSERT_TRUE(authorizer_.Grant("dba", "ann", "EP", Priv::kRead, false).ok());
  // Ann can open the view by name...
  EXPECT_TRUE(authorizer_.OpenView("ann", "EP").ok());
  // ...but cannot query the underlying relations (the paper's System R
  // criticism).
  EXPECT_TRUE(authorizer_.CheckQuery("ann", Query("retrieve (EMPLOYEE.NAME)"))
                  .IsPermissionDenied());
  EXPECT_TRUE(authorizer_.OpenView("bob", "EP").status().IsPermissionDenied());
  EXPECT_TRUE(authorizer_.OpenView("ann", "NOPE").status().IsNotFound());
}

TEST_F(SystemRTest, ViewCreationRequiresUnderlyingRead) {
  ConjunctiveQuery def = Query("retrieve (EMPLOYEE.NAME)");
  // Ann holds nothing: cannot define the view.
  EXPECT_TRUE(authorizer_.RegisterView("VE", "ann", def)
                  .IsPermissionDenied());
  // With READ (no grant option) she can define it but not grant it.
  ASSERT_TRUE(
      authorizer_.Grant("dba", "ann", "EMPLOYEE", Priv::kRead, false).ok());
  ASSERT_TRUE(authorizer_.RegisterView("VE", "ann", def).ok());
  EXPECT_TRUE(authorizer_.OpenView("ann", "VE").ok());
  EXPECT_TRUE(authorizer_.Grant("ann", "bob", "VE", Priv::kRead, false)
                  .IsPermissionDenied());
}

}  // namespace
}  // namespace systemr
}  // namespace viewauth
