// Unit tests for view compilation and storage (paper Section 3 / Figure 1).

#include "meta/view_store.h"

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

// Convenience: cell rendering with the catalog's variable names.
std::string CellText(const ViewCatalog& catalog, const MetaCell& cell) {
  return cell.ToString([&catalog](VarId v) { return catalog.VarName(v); });
}

std::vector<std::string> TupleTexts(const ViewCatalog& catalog,
                                    const ViewDefinition& def,
                                    const std::string& relation) {
  std::vector<std::string> out;
  for (size_t i = 0; i < def.tuples.size(); ++i) {
    if (def.tuple_relations[i] != relation) continue;
    std::vector<std::string> cells;
    for (const MetaCell& cell : def.tuples[i].cells()) {
      cells.push_back(CellText(catalog, cell));
    }
    out.push_back(Join(cells, "|"));
  }
  return out;
}

// Figure 1, row by row: the compiled meta-tuples must match the paper.
TEST(ViewStore, Figure1MetaTuples) {
  PaperDatabase fixture;
  const ViewCatalog& catalog = fixture.catalog();

  auto sae = catalog.GetView("SAE");
  ASSERT_TRUE(sae.ok());
  EXPECT_EQ(TupleTexts(catalog, **sae, "EMPLOYEE"),
            (std::vector<std::string>{"*||*"}));

  auto elp = catalog.GetView("ELP");
  ASSERT_TRUE(elp.ok());
  EXPECT_EQ(TupleTexts(catalog, **elp, "EMPLOYEE"),
            (std::vector<std::string>{"x1*|*|"}));
  EXPECT_EQ(TupleTexts(catalog, **elp, "PROJECT"),
            (std::vector<std::string>{"x2*||x3*"}));
  EXPECT_EQ(TupleTexts(catalog, **elp, "ASSIGNMENT"),
            (std::vector<std::string>{"x1*|x2*"}));

  auto est = catalog.GetView("EST");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(TupleTexts(catalog, **est, "EMPLOYEE"),
            (std::vector<std::string>{"*|x4*|", "*|x4*|"}));

  auto psa = catalog.GetView("PSA");
  ASSERT_TRUE(psa.ok());
  EXPECT_EQ(TupleTexts(catalog, **psa, "PROJECT"),
            (std::vector<std::string>{"*|Acme*|*"}));
}

TEST(ViewStore, Figure1Comparison) {
  PaperDatabase fixture;
  Relation comparison = fixture.catalog().MaterializeComparison();
  ASSERT_EQ(comparison.size(), 1);
  EXPECT_TRUE(comparison.Contains(
      Tuple({Value::String("ELP"), Value::String("x3"), Value::String(">="),
             Value::String("250000")})));
}

TEST(ViewStore, Figure1Permission) {
  PaperDatabase fixture;
  Relation permission = fixture.catalog().MaterializePermission();
  EXPECT_EQ(permission.size(), 5);
  EXPECT_TRUE(permission.Contains(
      Tuple({Value::String("Brown"), Value::String("SAE")})));
  EXPECT_TRUE(permission.Contains(
      Tuple({Value::String("Klein"), Value::String("ELP")})));
  EXPECT_FALSE(permission.Contains(
      Tuple({Value::String("Klein"), Value::String("SAE")})));
}

TEST(ViewStore, MaterializedMetaRelationScheme) {
  PaperDatabase fixture;
  auto employee_meta =
      fixture.catalog().MaterializeMetaRelation("EMPLOYEE");
  ASSERT_TRUE(employee_meta.ok());
  EXPECT_EQ(employee_meta->schema().name(), "EMPLOYEE'");
  EXPECT_EQ(employee_meta->schema().attribute(0).name, "VIEW");
  EXPECT_EQ(employee_meta->schema().arity(), 4);
  // SAE, ELP and one (collapsed) EST row.
  EXPECT_EQ(employee_meta->size(), 3);
  EXPECT_TRUE(
      fixture.catalog().MaterializeMetaRelation("NOPE").status().IsNotFound());
}

TEST(ViewStore, PermitAndDenySemantics) {
  PaperDatabase fixture;
  ViewCatalog& catalog = fixture.catalog();
  EXPECT_TRUE(catalog.IsPermitted("Brown", "SAE"));
  EXPECT_FALSE(catalog.IsPermitted("Brown", "ELP"));
  // Granting an unknown view fails; double grants are idempotent.
  EXPECT_TRUE(catalog.Permit("NOPE", "Brown").IsNotFound());
  EXPECT_TRUE(catalog.Permit("SAE", "Brown").ok());
  EXPECT_EQ(catalog.PermittedViews("Brown").size(), 3u);
  // Deny removes; denying twice fails.
  EXPECT_TRUE(catalog.Deny("SAE", "Brown").ok());
  EXPECT_FALSE(catalog.IsPermitted("Brown", "SAE"));
  EXPECT_TRUE(catalog.Deny("SAE", "Brown").IsNotFound());
  EXPECT_EQ(catalog.PermittedViews("Brown").size(), 2u);
}

TEST(ViewStore, DropViewPurgesGrants) {
  PaperDatabase fixture;
  ViewCatalog& catalog = fixture.catalog();
  EXPECT_TRUE(catalog.DropView("EST").ok());
  EXPECT_FALSE(catalog.HasView("EST"));
  EXPECT_FALSE(catalog.IsPermitted("Brown", "EST"));
  EXPECT_FALSE(catalog.IsPermitted("Klein", "EST"));
  EXPECT_TRUE(catalog.DropView("EST").IsNotFound());
}

TEST(ViewStore, DuplicateViewNameRejected) {
  PaperDatabase fixture;
  auto stmt = ParseStatement("view SAE (EMPLOYEE.NAME)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(fixture.catalog()
                  .DefineView(std::get<ViewStmt>(*stmt))
                  .IsAlreadyExists());
}

TEST(ViewStore, EmptyViewsRejected) {
  PaperDatabase fixture;
  const char* contradictions[] = {
      // Contradictory constants on one class.
      "view BAD1 (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme and "
      "PROJECT.SPONSOR = Apex",
      // Contradictory comparisons.
      "view BAD2 (PROJECT.NUMBER) where PROJECT.BUDGET > 500000 and "
      "PROJECT.BUDGET < 400000",
      // Constant violating a comparison after substitution.
      "view BAD3 (PROJECT.NUMBER) where PROJECT.BUDGET = 100 and "
      "PROJECT.BUDGET > 500000",
  };
  for (const char* text : contradictions) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    EXPECT_TRUE(fixture.catalog()
                    .DefineView(std::get<ViewStmt>(*stmt))
                    .IsInvalidArgument())
        << text;
  }
}

TEST(ViewStore, EqualitySubstitutionPinsWholeClass) {
  PaperDatabase fixture;
  // NAME = E_NAME = 'Jones': both cells become the constant.
  auto stmt = ParseStatement(
      "view VJ (EMPLOYEE.TITLE) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and EMPLOYEE.NAME = Jones");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(fixture.catalog().DefineView(std::get<ViewStmt>(*stmt)).ok());
  auto view = fixture.catalog().GetView("VJ");
  ASSERT_TRUE(view.ok());
  // EMPLOYEE tuple: (Jones, *, blank); ASSIGNMENT tuple: (Jones, blank).
  EXPECT_EQ(TupleTexts(fixture.catalog(), **view, "EMPLOYEE"),
            (std::vector<std::string>{"Jones|*|"}));
  EXPECT_EQ(TupleTexts(fixture.catalog(), **view, "ASSIGNMENT"),
            (std::vector<std::string>{"Jones|"}));
  // No comparison rows: the equality was substituted away.
  EXPECT_TRUE((**view).comparisons.empty());
}

TEST(ViewStore, ComparativeVariableKeptEvenWhenSingleOccurrence) {
  PaperDatabase fixture;
  // BUDGET occurs once but carries a comparison: it must be a variable,
  // not a blank (ELP's x3 pattern).
  auto elp = fixture.catalog().GetView("ELP");
  ASSERT_TRUE(elp.ok());
  const ViewDefinition& def = **elp;
  ASSERT_EQ(def.comparisons.size(), 1u);
  EXPECT_EQ(def.comparisons[0].op, Comparator::kGe);
  EXPECT_EQ(def.comparisons[0].rhs_const, Value::Int64(250000));
  EXPECT_EQ(def.vars.size(), 3u);
}

TEST(ViewStore, VariableNamesAreSequential) {
  PaperDatabase fixture;
  // SAE has no variables; ELP gets x1..x3; EST gets x4 — matching the
  // paper's numbering because views compile in that order.
  EXPECT_EQ(fixture.catalog().VarName(1), "x1");
  EXPECT_EQ(fixture.catalog().VarName(4), "x4");
  EXPECT_EQ(fixture.catalog().VarName(1000000), "w1");
}

TEST(ViewStore, ViewOverUnknownRelationRejected) {
  PaperDatabase fixture;
  auto stmt = ParseStatement("view V (NOPE.A)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(fixture.catalog()
                  .DefineView(std::get<ViewStmt>(*stmt))
                  .IsNotFound());
}

}  // namespace
}  // namespace viewauth
