// Tests for the vectorized columnar data plan (algebra/vectorized.h),
// the column-batch predicate kernels (storage/column_batch.h), and the
// fused compiled-mask batch application (Authorizer::ApplyMaskVectorized).
//
// The contract under test throughout: every batched path is
// bit-identical to its tuple-at-a-time counterpart — same rows, same
// delivery order, same rows_scanned accounting, same governed-abort
// behavior — only the loop shape changes.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "algebra/evaluator.h"
#include "algebra/latemat.h"
#include "algebra/optimizer.h"
#include "algebra/vectorized.h"
#include "authz/authz_cache.h"
#include "authz/compiled_mask.h"
#include "parser/parser.h"
#include "storage/column_batch.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

// ---------------------------------------------------------------------
// Kernel oracle: every Filter* kernel must agree with a per-row
// Value::Satisfies loop on arbitrary mixed-type windows.
// ---------------------------------------------------------------------

Value RandomValue(std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_int_distribution<int> small(-3, 3);
  switch (kind(rng)) {
    case 0:
      return Value::Int64(small(rng));
    case 1:
      return Value::Double(static_cast<double>(small(rng)) / 2.0);
    case 2:
      return Value::String(std::string(1, static_cast<char>('a' + (small(rng) + 3))));
    case 3:
      return Value::Null();
    default:
      return Value::Int64(small(rng));
  }
}

// A uniform window (single type, no NULLs) exercises the typed fast
// paths; a mixed window exercises the boxed fallback.
std::vector<Tuple> RandomRows(std::mt19937& rng, size_t n, bool uniform) {
  std::vector<Tuple> rows;
  std::uniform_int_distribution<int> small(-3, 3);
  for (size_t i = 0; i < n; ++i) {
    if (uniform) {
      rows.push_back(
          Tuple({Value::Int64(small(rng)), Value::Int64(small(rng))}));
    } else {
      rows.push_back(Tuple({RandomValue(rng), RandomValue(rng)}));
    }
  }
  return rows;
}

TEST(ColumnBatchKernels, AgreeWithSatisfiesOnRandomWindows) {
  const Comparator ops[] = {Comparator::kEq, Comparator::kNe,
                            Comparator::kLt, Comparator::kLe,
                            Comparator::kGt, Comparator::kGe};
  std::mt19937 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const bool uniform = trial % 2 == 0;
    const std::vector<Tuple> rows = RandomRows(rng, 64, uniform);
    ColumnBatch batch;
    batch.ResetDense(rows, 0, rows.size(), /*arity=*/2);
    const Value rhs_const = RandomValue(rng);
    for (Comparator op : ops) {
      // Column-vs-constant.
      std::vector<uint32_t> sel;
      ResetSelection(&sel, rows.size());
      FilterColumnConst(batch.column(0), op, rhs_const, &sel);
      std::vector<uint32_t> want;
      for (uint32_t i = 0; i < rows.size(); ++i) {
        if (rows[i].values()[0].Satisfies(op, rhs_const)) want.push_back(i);
      }
      EXPECT_EQ(sel, want) << "const op " << static_cast<int>(op)
                           << " trial " << trial;

      // Column-vs-column.
      ResetSelection(&sel, rows.size());
      FilterColumnColumn(batch.column(0), op, batch.column(1), &sel);
      want.clear();
      for (uint32_t i = 0; i < rows.size(); ++i) {
        if (rows[i].values()[0].Satisfies(op, rows[i].values()[1])) {
          want.push_back(i);
        }
      }
      EXPECT_EQ(sel, want) << "col op " << static_cast<int>(op) << " trial "
                           << trial;
    }

    // Not-null.
    std::vector<uint32_t> sel;
    ResetSelection(&sel, rows.size());
    FilterNotNull(batch.column(1), &sel);
    std::vector<uint32_t> want;
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].values()[1].is_null()) want.push_back(i);
    }
    EXPECT_EQ(sel, want) << "not-null trial " << trial;
  }
}

TEST(ColumnBatchKernels, NullConstantClearsSelection) {
  // NULL never satisfies any comparator, so a NULL rhs empties the
  // selection wholesale.
  const std::vector<Tuple> rows = {Tuple({Value::Int64(1)}),
                                   Tuple({Value::Null()})};
  ColumnBatch batch;
  batch.ResetDense(rows, 0, rows.size(), /*arity=*/1);
  std::vector<uint32_t> sel;
  ResetSelection(&sel, rows.size());
  FilterColumnConst(batch.column(0), Comparator::kEq, Value::Null(), &sel);
  EXPECT_TRUE(sel.empty());
}

// ---------------------------------------------------------------------
// Selection-vector edges around the batch boundary: empty input,
// all-pass, all-fail, and sizes straddling kColumnBatchRows.
// ---------------------------------------------------------------------

class SelectionEdge {
 public:
  // A single relation with `n` rows; relations are sets, so a unique ID
  // column keeps every row distinct. Row i has A = i % 7 and B chosen so
  // that `A = B` holds according to `pass(i)`.
  SelectionEdge(size_t n, bool (*pass)(size_t)) {
    auto schema = RelationSchema::Make("R", {{"ID", ValueType::kInt64},
                                             {"A", ValueType::kInt64},
                                             {"B", ValueType::kInt64}});
    VIEWAUTH_TEST_OK(schema.status());
    VIEWAUTH_TEST_OK(db_.CreateRelation(std::move(schema).value()));
    for (size_t i = 0; i < n; ++i) {
      const int64_t a = static_cast<int64_t>(i % 7);
      const int64_t b = pass(i) ? a : a + 1;
      VIEWAUTH_TEST_OK(
          db_.Insert("R", Tuple({Value::Int64(static_cast<int64_t>(i)),
                                 Value::Int64(a), Value::Int64(b)})));
      if (pass(i)) expected_.push_back(static_cast<uint32_t>(i));
    }
  }

  // Runs the non-indexable predicate R.A = R.B through the vectorized
  // row-id scan and differences it against the expected ids and the
  // tuple-at-a-time SelectRowIds accounting.
  void Check(size_t n) {
    const ConjunctivePredicate pred(
        {SelectionAtom::ColumnColumn(1, Comparator::kEq, 2)});
    auto rel = db_.GetRelation("R");
    ASSERT_TRUE(rel.ok());
    EvalStats stats;
    const std::vector<uint32_t> got =
        VectorizedSelectRowIds(**rel, (*rel)->schema(), pred, &stats);
    EXPECT_EQ(got, expected_);
    EXPECT_EQ(stats.rows_scanned, static_cast<long long>(n));
    const long long batches =
        static_cast<long long>((n + kColumnBatchRows - 1) / kColumnBatchRows);
    EXPECT_EQ(stats.batches_evaluated, batches);
  }

 private:
  DatabaseInstance db_;
  std::vector<uint32_t> expected_;
};

TEST(SelectionVector, EmptyRelation) {
  SelectionEdge edge(0, [](size_t) { return true; });
  edge.Check(0);
}

TEST(SelectionVector, AllPass) {
  SelectionEdge edge(100, [](size_t) { return true; });
  edge.Check(100);
}

TEST(SelectionVector, AllFail) {
  SelectionEdge edge(100, [](size_t) { return false; });
  edge.Check(100);
}

TEST(SelectionVector, BatchBoundaryMinusOne) {
  SelectionEdge edge(1023, [](size_t i) { return i % 3 == 0; });
  edge.Check(1023);
}

TEST(SelectionVector, BatchBoundaryExact) {
  SelectionEdge edge(1024, [](size_t i) { return i % 3 == 0; });
  edge.Check(1024);
}

TEST(SelectionVector, BatchBoundaryPlusOne) {
  SelectionEdge edge(1025, [](size_t i) { return i % 3 == 0; });
  edge.Check(1025);
}

// ---------------------------------------------------------------------
// Plan equivalence: vectorized == latemat == optimized == canonical on
// the paper queries and on randomized instances.
// ---------------------------------------------------------------------

TEST(Vectorized, MatchesCanonicalOnPaperQueries) {
  PaperDatabase fixture;
  for (const char* text : {
           "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250000",
           "retrieve (ASSIGNMENT.E_NAME)",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
           "and PROJECT.BUDGET > 300000",
           "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
           "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
           "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.SALARY >= PROJECT.BUDGET",  // cartesian + filter
           "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Nowhere",
       }) {
    ConjunctiveQuery query = fixture.Query(text);
    auto canonical = EvaluateCanonical(query, fixture.db());
    auto vectorized = EvaluateVectorized(query, fixture.db());
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(vectorized.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*vectorized)) << text;
  }
}

class VectorizedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(VectorizedEquivalenceTest, MatchesAllOtherPlans) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> val(0, 4);
  std::uniform_int_distribution<int> rows(0, 12);

  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "R",
                                    {{"A", ValueType::kInt64},
                                     {"B", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "S",
                                    {{"C", ValueType::kInt64},
                                     {"D", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema::Make("T", {{"E", ValueType::kInt64}})
                        .value())
                  .ok());
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("R", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("S", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("T", Tuple({Value::Int64(val(rng))})).ok());
  }

  const char* queries[] = {
      "retrieve (R.A, S.D) where R.B = S.C",
      "retrieve (R.A) where R.B = S.C and S.D = T.E",
      "retrieve (R.A, R.B)",
      "retrieve (R.A, S.C) where R.A >= 2 and S.C < 3",
      "retrieve (R.A, S.D) where R.B != S.C",  // no equality: cartesian
      "retrieve (R:1.A, R:2.B) where R:1.B = R:2.A and R:1.A <= 2",
      "retrieve (R.A, S.C, T.E) where R.A = S.C and S.C = T.E",
      "retrieve (R.B) where R.A = 3",
      "retrieve (R.A, S.D) where R.B = S.C and S.D = 2 and R.A = 1",
      "retrieve (R.A, S.D) where R.A = S.C and R.B = S.D",
  };
  for (const char* text : queries) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto query = ConjunctiveQuery::FromRetrieve(
        db.schema(), std::get<RetrieveStmt>(*stmt));
    ASSERT_TRUE(query.ok()) << text;
    auto canonical = EvaluateCanonical(*query, db);
    auto optimized = EvaluateOptimized(*query, db);
    auto latemat = EvaluateLateMaterialized(*query, db);
    auto vectorized = EvaluateVectorized(*query, db);
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(optimized.ok()) << text;
    ASSERT_TRUE(latemat.ok()) << text;
    ASSERT_TRUE(vectorized.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*vectorized))
        << text << "\ncanonical: " << canonical->size()
        << " rows, vectorized: " << vectorized->size() << " rows";
    EXPECT_TRUE(optimized->SameTuples(*vectorized)) << text;
    // Latemat and vectorized share a plan shape; they must agree not
    // just as multisets but row for row.
    ASSERT_EQ(latemat->rows().size(), vectorized->rows().size()) << text;
    for (size_t i = 0; i < latemat->rows().size(); ++i) {
      EXPECT_TRUE(latemat->rows()[i] == vectorized->rows()[i])
          << text << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedEquivalenceTest,
                         ::testing::Range(1, 11));

// Mixed-type and NULL-bearing columns force the kMixed boxed fallback in
// the kernels; the results must still match the row-at-a-time plans.
TEST(Vectorized, MixedTypeColumnsMatchOptimized) {
  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "L",
                                    {{"K", ValueType::kDouble},
                                     {"P", ValueType::kString}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "M",
                                    {{"K", ValueType::kDouble},
                                     {"Q", ValueType::kInt64}})
                                    .value())
                  .ok());
  auto ins = [&](const char* rel, Value k, Value v) {
    ASSERT_TRUE(db.Insert(rel, Tuple({std::move(k), std::move(v)})).ok());
  };
  ins("L", Value::Double(5.0), Value::String("five"));
  ins("L", Value::Double(2.5), Value::String("half"));
  ins("L", Value::Null(), Value::String("none"));
  ins("M", Value::Double(5.0), Value::Int64(1));
  ins("M", Value::Double(2.5), Value::Int64(2));
  ins("M", Value::Null(), Value::Int64(3));

  for (const char* text : {
           "retrieve (L.P, M.Q) where L.K = M.K",
           "retrieve (L.P) where L.K >= 2.5",
           "retrieve (L.P, M.Q) where L.K != M.K",
       }) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto query = ConjunctiveQuery::FromRetrieve(
        db.schema(), std::get<RetrieveStmt>(*stmt));
    ASSERT_TRUE(query.ok()) << text;
    auto optimized = EvaluateOptimized(*query, db);
    auto vectorized = EvaluateVectorized(*query, db);
    ASSERT_TRUE(optimized.ok()) << text;
    ASSERT_TRUE(vectorized.ok()) << text;
    EXPECT_TRUE(optimized->SameTuples(*vectorized)) << text;
  }
}

// ---------------------------------------------------------------------
// rows_scanned contract: identical accounting to every other plan.
// ---------------------------------------------------------------------

TEST(Vectorized, RowsScannedContractFullScan) {
  PaperDatabase fixture;
  // No indexable atom: all 3 + 6 rows are examined, same as canonical.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME");
  EvalStats stats;
  ASSERT_TRUE(EvaluateVectorized(query, fixture.db(), "ANSWER", &stats).ok());
  EXPECT_EQ(stats.rows_scanned, 9);
  EXPECT_GT(stats.batches_evaluated, 0);
}

TEST(Vectorized, RowsScannedContractIndexProbe) {
  PaperDatabase fixture;
  // Hash-index probe: the vectorized scan delegates to SelectRowIds and
  // charges exactly the 2 yielded rows.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (ASSIGNMENT.P_NO) where ASSIGNMENT.E_NAME = Brown");
  EvalStats stats;
  ASSERT_TRUE(EvaluateVectorized(query, fixture.db(), "ANSWER", &stats).ok());
  EXPECT_EQ(stats.rows_scanned, 2);
}

TEST(Vectorized, RowsScannedContractRangeScan) {
  PaperDatabase fixture;
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 300000");
  EvalStats stats;
  ASSERT_TRUE(EvaluateVectorized(query, fixture.db(), "ANSWER", &stats).ok());
  EXPECT_EQ(stats.rows_scanned, 1);
}

// ---------------------------------------------------------------------
// Fused mask application: FilterBatch == Satisfies per tuple, and
// ApplyMaskVectorized == ApplyMask row for row, in delivery order.
// ---------------------------------------------------------------------

TEST(MaskBatch, FilterBatchAgreesWithSatisfiesOnPaperMasks) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  for (const char* text : {
           "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
           "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER",
       }) {
    for (const char* user : {"Brown", "Klein"}) {
      ConjunctiveQuery query = fixture.Query(text);
      auto mask = authorizer.DeriveMask(user, query);
      ASSERT_TRUE(mask.ok()) << text;
      auto answer = EvaluateVectorized(query, fixture.db());
      ASSERT_TRUE(answer.ok()) << text;
      const CompiledMask compiled = CompiledMask::Compile(*mask);
      ColumnBatch batch;
      batch.ResetDense(answer->rows(), 0, answer->rows().size(),
                       answer->schema().arity());
      for (size_t t = 0; t < compiled.tuples.size(); ++t) {
        std::vector<uint32_t> sel;
        ResetSelection(&sel, answer->rows().size());
        compiled.tuples[t].FilterBatch(&batch, &sel);
        std::vector<uint32_t> want;
        for (uint32_t i = 0; i < answer->rows().size(); ++i) {
          if (compiled.tuples[t].Satisfies(answer->rows()[i])) {
            want.push_back(i);
          }
        }
        EXPECT_EQ(sel, want)
            << text << " user=" << user << " tuple=" << t;
      }
    }
  }
}

TEST(MaskBatch, ApplyMaskVectorizedMatchesApplyMaskRowForRow) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  for (const char* text : {
           "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
           "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER",
       }) {
    for (const char* user : {"Brown", "Klein"}) {
      for (const bool drop : {true, false}) {
        ConjunctiveQuery query = fixture.Query(text);
        auto mask = authorizer.DeriveMask(user, query);
        ASSERT_TRUE(mask.ok()) << text;
        auto answer = EvaluateVectorized(query, fixture.db());
        ASSERT_TRUE(answer.ok()) << text;
        const CompiledMask compiled = CompiledMask::Compile(*mask);
        const Relation scalar = Authorizer::ApplyMask(*answer, compiled, drop);
        EvalStats stats;
        const Relation batched = Authorizer::ApplyMaskVectorized(
            *answer, compiled, drop, /*ctx=*/nullptr, &stats);
        ASSERT_EQ(scalar.rows().size(), batched.rows().size())
            << text << " user=" << user << " drop=" << drop;
        for (size_t i = 0; i < scalar.rows().size(); ++i) {
          EXPECT_TRUE(scalar.rows()[i] == batched.rows()[i])
              << text << " user=" << user << " drop=" << drop << " row "
              << i;
        }
        if (!compiled.tuples.empty() && !answer->rows().empty()) {
          EXPECT_GT(stats.mask_batch_applies, 0) << text;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Governance: the vectorized plan ticks the shared ExecContext once per
// batch, still honors budgets, and a governed abort publishes no batch
// counters (the cache txn is discarded).
// ---------------------------------------------------------------------

TEST(VectorizedGovernance, RowBudgetAbortsMidScan) {
  DatabaseInstance db;
  // A unique ID column keeps all 3000 rows distinct (relations are
  // sets).
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema::Make("R", {{"ID", ValueType::kInt64},
                                               {"A", ValueType::kInt64},
                                               {"B", ValueType::kInt64}})
                        .value())
                  .ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db.Insert("R", Tuple({Value::Int64(i), Value::Int64(i % 7),
                                      Value::Int64(i % 5)}))
                    .ok());
  }
  auto stmt = ParseStatement("retrieve (R.A) where R.A = R.B");
  ASSERT_TRUE(stmt.ok());
  auto query = ConjunctiveQuery::FromRetrieve(db.schema(),
                                              std::get<RetrieveStmt>(*stmt));
  ASSERT_TRUE(query.ok());

  ExecContext ctx(ExecLimits{/*deadline_ms=*/0, /*max_rows=*/1500,
                             /*max_bytes=*/0});
  EvalStats stats;
  auto result = EvaluateVectorized(*query, db, "ANSWER", &stats, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // Per-batch ticking: the second 1024-row batch trips the budget, so
  // the plan never charges the third.
  EXPECT_LE(ctx.rows_charged(), 2 * 1024);
  EXPECT_LE(stats.rows_scanned, 2 * 1024);
}

TEST(VectorizedGovernance, ZeroBudgetRetrieveIsSideEffectFree) {
  PaperDatabase fixture;
  AuthzCache cache;
  Authorizer authorizer(&fixture.db(), &fixture.catalog(), &cache);
  // Brown's grants (SAE + EST) cover this query only partially, so the
  // successful retrieve must run real mask kernels.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)");
  AuthorizationOptions options;  // defaults: vectorized plan
  options.max_rows = 1;
  auto aborted = authorizer.Retrieve("Brown", query, options);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
  const AuthzStats after_abort = cache.Snapshot();
  EXPECT_EQ(after_abort.budget_exceeded, 1);
  // The aborted retrieve's staged counters were discarded wholesale.
  EXPECT_EQ(after_abort.batches_evaluated, 0);
  EXPECT_EQ(after_abort.mask_batch_applies, 0);

  // The same retrieve without a budget succeeds and publishes the batch
  // counters through the cache txn.
  auto ok = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(ok.ok()) << ok.status();
  const AuthzStats after_ok = cache.Snapshot();
  EXPECT_GT(after_ok.batches_evaluated, 0);
  EXPECT_GT(after_ok.mask_batch_applies, 0);
}

}  // namespace
}  // namespace viewauth
