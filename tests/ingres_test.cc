// Unit tests for the INGRES query-modification baseline
// (Stonebraker & Wong), reproducing the limitations the paper's
// introduction describes.

#include "baselines/ingres/query_modification.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_util.h"

namespace viewauth {
namespace ingres {
namespace {

using testing_util::PaperDatabase;

Condition Cond(const char* rel, const char* attr, Comparator op, Value v) {
  Condition c;
  c.lhs = AttributeRef{rel, 1, attr};
  c.op = op;
  c.rhs = ConditionOperand::Const(std::move(v));
  return c;
}

RetrieveStmt Retrieve(const std::string& text) {
  auto stmt = ParseStatement(text);
  VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
  return std::get<RetrieveStmt>(*stmt);
}

class IngresTest : public ::testing::Test {
 protected:
  IngresTest() : authorizer_(&fixture_.db().schema()) {
    // Ann may see names and titles of employees earning under 30k.
    Permission p;
    p.user = "ann";
    p.relation = "EMPLOYEE";
    p.columns = {"NAME", "TITLE", "SALARY"};
    p.qualification.push_back(Cond("EMPLOYEE", "SALARY", Comparator::kLt,
                                   Value::Int64(30000)));
    VIEWAUTH_TEST_OK(authorizer_.AddPermission(std::move(p)));
  }

  PaperDatabase fixture_;
  IngresAuthorizer authorizer_;
};

TEST_F(IngresTest, QualificationIsConjoined) {
  RetrieveStmt stmt =
      Retrieve("retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 23000");
  auto result = authorizer_.Retrieve("ann", stmt.targets, stmt.conditions,
                                     fixture_.db());
  ASSERT_TRUE(result.ok()) << result.status();
  // 23000 < salary < 30000: only Jones (26000).
  ASSERT_EQ(result->size(), 1);
  EXPECT_TRUE(result->Contains(Tuple({Value::String("Jones")})));
}

TEST_F(IngresTest, ColumnOverreachRejectsWholeQuery) {
  // SALARY is permitted here, but asking beyond the column set of every
  // permission (none covers PROJECT at all) rejects the query; and a
  // user-specific check: bob has no permissions.
  RetrieveStmt stmt = Retrieve("retrieve (EMPLOYEE.NAME)");
  EXPECT_TRUE(authorizer_
                  .Modify("bob", stmt.targets, stmt.conditions)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(IngresTest, RowColumnAsymmetry) {
  // The paper's asymmetry: a permission on {NAME, TITLE} only.
  Permission narrow;
  narrow.user = "cal";
  narrow.relation = "EMPLOYEE";
  narrow.columns = {"NAME", "TITLE"};
  ASSERT_TRUE(authorizer_.AddPermission(std::move(narrow)).ok());

  RetrieveStmt within = Retrieve("retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)");
  EXPECT_TRUE(
      authorizer_.Modify("cal", within.targets, within.conditions).ok());

  // One extra attribute: whole query rejected, not column-reduced.
  RetrieveStmt beyond = Retrieve(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)");
  EXPECT_TRUE(authorizer_
                  .Modify("cal", beyond.targets, beyond.conditions)
                  .status()
                  .IsPermissionDenied());
  // Even a qualification mentioning the attribute triggers rejection.
  RetrieveStmt via_where = Retrieve(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 0");
  EXPECT_TRUE(authorizer_
                  .Modify("cal", via_where.targets, via_where.conditions)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(IngresTest, MultiplePermissionsDisjoin) {
  // A second permission for Ann: managers regardless of salary.
  Permission managers;
  managers.user = "ann";
  managers.relation = "EMPLOYEE";
  managers.columns = {"NAME", "TITLE", "SALARY"};
  managers.qualification.push_back(Cond("EMPLOYEE", "TITLE", Comparator::kEq,
                                        Value::String("manager")));
  ASSERT_TRUE(authorizer_.AddPermission(std::move(managers)).ok());

  RetrieveStmt stmt = Retrieve("retrieve (EMPLOYEE.NAME)");
  auto modified = authorizer_.Modify("ann", stmt.targets, stmt.conditions);
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified->size(), 2u);  // one query per permission

  auto result = authorizer_.Retrieve("ann", stmt.targets, stmt.conditions,
                                     fixture_.db());
  ASSERT_TRUE(result.ok());
  // Under 30k: Jones, Smith. Managers: Jones. Union: Jones, Smith.
  EXPECT_EQ(result->size(), 2);
  EXPECT_TRUE(result->Contains(Tuple({Value::String("Smith")})));
  EXPECT_FALSE(result->Contains(Tuple({Value::String("Brown")})));
}

TEST_F(IngresTest, MultiRelationQueriesNeedEveryRelationCovered) {
  RetrieveStmt stmt = Retrieve(
      "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER");
  EXPECT_TRUE(authorizer_
                  .Modify("ann", stmt.targets, stmt.conditions)
                  .status()
                  .IsPermissionDenied());
}

TEST(IngresValidation, PermissionsAreSingleRelation) {
  PaperDatabase fixture;
  IngresAuthorizer authorizer(&fixture.db().schema());
  Permission bad;
  bad.user = "u";
  bad.relation = "EMPLOYEE";
  bad.columns = {"NAME"};
  Condition c;
  c.lhs = AttributeRef{"PROJECT", 1, "BUDGET"};  // foreign relation
  c.op = Comparator::kGt;
  c.rhs = ConditionOperand::Const(Value::Int64(0));
  bad.qualification.push_back(c);
  EXPECT_TRUE(authorizer.AddPermission(std::move(bad)).IsInvalidArgument());

  Permission unknown_column;
  unknown_column.user = "u";
  unknown_column.relation = "EMPLOYEE";
  unknown_column.columns = {"NOPE"};
  EXPECT_TRUE(
      authorizer.AddPermission(std::move(unknown_column)).IsNotFound());

  Permission unknown_relation;
  unknown_relation.user = "u";
  unknown_relation.relation = "NOPE";
  unknown_relation.columns = {"A"};
  EXPECT_TRUE(
      authorizer.AddPermission(std::move(unknown_relation)).IsNotFound());
}

}  // namespace
}  // namespace ingres
}  // namespace viewauth
