// Property tests for the paper's Propositions 1-3: the extended
// operators on meta-tuples commute with the ordinary operators on the
// subviews they define.
//
// A self-contained meta-tuple r over relation R defines the subview
//   r(D) = pi_alpha sigma_lambda (R(D))
// (alpha = starred cells, lambda = cell predicates). The propositions:
//   P1:  (r x s)(D)        == r(D) x s(D)
//   P2:  sigma_l(r)(D)     == sigma_l(r(D))   for l on projected cells
//   P3:  pi_{R-A_i}(r)(D)  == pi_{R-A_i}(r(D)) for blank A_i
// We materialize both sides by brute force over randomized data and
// randomized meta-tuples and compare.

#include <gtest/gtest.h>

#include <random>

#include "authz/authorizer.h"
#include "meta/ops.h"
#include "storage/relation.h"

namespace viewauth {
namespace {

// Materializes the subview a self-contained meta-tuple defines over
// `rows`: the projection (in column order) of the rows satisfying the
// tuple's cell predicates. Non-projected columns are dropped.
std::set<std::vector<Value>> Extension(const MetaTuple& tuple,
                                       const std::vector<Tuple>& rows) {
  std::set<std::vector<Value>> out;
  for (const Tuple& row : rows) {
    if (!Authorizer::RowSatisfies(tuple, row)) continue;
    std::vector<Value> projected;
    for (int i = 0; i < tuple.arity(); ++i) {
      if (tuple.cells()[i].projected) projected.push_back(row.at(i));
    }
    out.insert(std::move(projected));
  }
  return out;
}

// A random self-contained meta-tuple over `arity` int columns.
MetaTuple RandomTuple(std::mt19937& rng, int arity, VarId* next_var) {
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int64_t> val(0, 4);
  std::uniform_int_distribution<int> opd(0, 5);
  MetaTuple tuple;
  for (int i = 0; i < arity; ++i) {
    bool starred = rng() % 2 == 0;
    switch (kind(rng)) {
      case 0:
        tuple.cells().push_back(MetaCell::Blank(starred));
        break;
      case 1:
        tuple.cells().push_back(
            MetaCell::Const(Value::Int64(val(rng)), starred));
        break;
      default: {
        VarId var = (*next_var)++;
        tuple.cells().push_back(MetaCell::Var(var, starred));
        tuple.constraints().DeclareTermType(var, ValueType::kInt64);
        tuple.constraints().AddTermConst(
            var, static_cast<Comparator>(opd(rng)), Value::Int64(val(rng)));
        tuple.var_atoms()[var] = {1};
        break;
      }
    }
  }
  tuple.origin_atoms().insert(1);
  tuple.views().insert("V");
  return tuple;
}

std::vector<Tuple> RandomRows(std::mt19937& rng, int arity, int count) {
  std::uniform_int_distribution<int64_t> val(0, 4);
  std::vector<Tuple> rows;
  for (int i = 0; i < count; ++i) {
    std::vector<Value> values;
    for (int c = 0; c < arity; ++c) values.push_back(Value::Int64(val(rng)));
    rows.emplace_back(std::move(values));
  }
  return rows;
}

std::vector<Attribute> IntColumns(int n) {
  std::vector<Attribute> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Attribute{"C" + std::to_string(i), ValueType::kInt64});
  }
  return out;
}

class PropositionsTest : public ::testing::TestWithParam<int> {};

// P1: the product tuple's extension over R(D) x S(D) equals the product
// of the factor extensions.
TEST_P(PropositionsTest, Proposition1Product) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  VarId next_var = 1;
  for (int round = 0; round < 20; ++round) {
    MetaTuple r = RandomTuple(rng, 2, &next_var);
    MetaTuple s = RandomTuple(rng, 2, &next_var);
    std::vector<Tuple> r_rows = RandomRows(rng, 2, 6);
    std::vector<Tuple> s_rows = RandomRows(rng, 2, 5);

    MetaRelation left(IntColumns(2));
    left.Add(r);
    MetaRelation right(IntColumns(2));
    MetaTuple s_named = s;
    s_named.views() = {"W"};
    s_named.origin_atoms() = {2};
    right.Add(s_named);
    MetaOpOptions no_padding;
    no_padding.padding = false;
    MetaRelation product = MetaProduct(left, right, no_padding);
    ASSERT_EQ(product.size(), 1);

    // Combined extension over the row product.
    std::vector<Tuple> combined_rows;
    for (const Tuple& a : r_rows) {
      for (const Tuple& b : s_rows) {
        combined_rows.push_back(Tuple::Concat(a, b));
      }
    }
    std::set<std::vector<Value>> lhs =
        Extension(product.tuples()[0], combined_rows);

    std::set<std::vector<Value>> rhs;
    for (const std::vector<Value>& a : Extension(r, r_rows)) {
      for (const std::vector<Value>& b : Extension(s_named, s_rows)) {
        std::vector<Value> joined = a;
        joined.insert(joined.end(), b.begin(), b.end());
        rhs.insert(std::move(joined));
      }
    }
    EXPECT_EQ(lhs, rhs);
  }
}

// P2: selecting the meta-tuple then materializing equals materializing
// then selecting, for predicates on projected cells. (With the
// refinements enabled the meta side may *gain* rows relative to
// sigma_l(r(D)) only by weakening the description — never rows outside
// r(D) — so the check compares against sigma applied to the answer rows,
// which is what the mask is applied to.)
TEST_P(PropositionsTest, Proposition2Selection) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 100);
  std::uniform_int_distribution<int64_t> val(0, 4);
  std::uniform_int_distribution<int> opd(0, 5);
  VarId next_var = 1;
  VarAllocator alloc;
  for (int round = 0; round < 40; ++round) {
    MetaTuple r = RandomTuple(rng, 3, &next_var);
    std::vector<Tuple> rows = RandomRows(rng, 3, 8);
    const int column = static_cast<int>(rng() % 3);
    if (!r.cells()[column].projected) continue;  // Definition 2 scope
    Comparator op = static_cast<Comparator>(opd(rng));
    Value bound = Value::Int64(val(rng));

    MetaRelation rel(IntColumns(3));
    rel.Add(r);
    MetaRelation selected =
        MetaSelect(rel, MetaSelection::ColumnConst(column, op, bound),
                   MetaOpOptions{}, &alloc);

    // The data side: rows surviving the query selection.
    std::vector<Tuple> selected_rows;
    for (const Tuple& row : rows) {
      if (row.at(column).Satisfies(op, bound)) selected_rows.push_back(row);
    }
    // sigma_l(r(D)): the original subview restricted to l.
    std::set<std::vector<Value>> expected = Extension(r, selected_rows);

    // The meta side, applied to the selected rows (as the mask is).
    std::set<std::vector<Value>> actual;
    for (const MetaTuple& t : selected.tuples()) {
      for (const std::vector<Value>& v : Extension(t, selected_rows)) {
        actual.insert(v);
      }
    }
    EXPECT_EQ(actual, expected)
        << "column " << column << " " << ComparatorToString(op) << " "
        << bound.ToString();
  }
}

// P3: projecting away a blank column commutes with projecting the
// extension.
TEST_P(PropositionsTest, Proposition3Projection) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 200);
  VarId next_var = 1;
  for (int round = 0; round < 40; ++round) {
    MetaTuple r = RandomTuple(rng, 3, &next_var);
    const int removed = static_cast<int>(rng() % 3);
    if (!r.cells()[removed].is_blank()) continue;  // Definition 3 scope
    std::vector<Tuple> rows = RandomRows(rng, 3, 8);

    std::vector<int> keep;
    for (int c = 0; c < 3; ++c) {
      if (c != removed) keep.push_back(c);
    }
    MetaRelation rel(IntColumns(3));
    rel.Add(r);
    MetaRelation projected = MetaProject(rel, keep);
    ASSERT_EQ(projected.size(), 1);

    std::vector<Tuple> projected_rows;
    for (const Tuple& row : rows) projected_rows.push_back(row.Project(keep));
    std::set<std::vector<Value>> lhs =
        Extension(projected.tuples()[0], projected_rows);

    // pi of the extension: drop the removed column's value when it was
    // projected; identical otherwise (blank unprojected columns never
    // appear in extensions).
    std::set<std::vector<Value>> rhs;
    if (r.cells()[removed].projected) {
      // Position of `removed` among the projected columns.
      int position = 0;
      for (int c = 0; c < removed; ++c) {
        if (r.cells()[c].projected) ++position;
      }
      for (std::vector<Value> v : Extension(r, rows)) {
        v.erase(v.begin() + position);
        rhs.insert(std::move(v));
      }
    } else {
      rhs = Extension(r, rows);
    }
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropositionsTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace viewauth
