// Crash-point torture tier (run separately by tools/check.sh, and under
// ASan+UBSan/TSan with the full suite).
//
// For a seeded catalog workload, simulates a hard crash at EVERY byte
// boundary while the statement log is being appended, and at every fault
// point of a compaction (each staged byte, the staging fsync, the rename
// commit). After each simulated crash the log is reopened the way a
// restarted process would — on the real filesystem, in salvage mode —
// and the recovered catalog must equal the state produced by a PREFIX of
// the applied mutating statements: crashes may lose the tail, but they
// must never invent, reorder, or corrupt authorization state.

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file.h"
#include "engine/durable.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

// A seeded, deterministic catalog workload in the same spirit as the
// differential-soundness scenario generator: random data, views over
// random predicates, grants/denies for several users, and a guarded
// delete. Every statement mutates state, so the durable log must carry
// exactly this sequence.
std::vector<std::string> SeededWorkload(uint32_t seed) {
  std::mt19937 rng(seed);
  auto value = [&rng](int bound) {
    return std::to_string(static_cast<int>(rng() % bound));
  };
  std::vector<std::string> statements = {
      "relation R (A int key, B int)",
      "relation S (K string key, N int)",
  };
  for (int i = 0; i < 5; ++i) {
    statements.push_back("insert into R values (" + std::to_string(i) +
                         ", " + value(50) + ")");
  }
  for (int i = 0; i < 3; ++i) {
    statements.push_back("insert into S values (k" + std::to_string(i) +
                         ", " + value(9) + ")");
  }
  statements.push_back("view VLOW (R.A, R.B) where R.B < " + value(40));
  statements.push_back("view VALL (S.K, S.N)");
  statements.push_back("permit VLOW to alice");
  statements.push_back("permit VALL to bob");
  statements.push_back("permit VALL to carol");
  statements.push_back("deny VALL to carol");
  statements.push_back("permit VLOW to dave for delete");
  statements.push_back("delete from R where R.B < " + value(25) +
                       " as dave");
  return statements;
}

// DumpScript of the state reached after the first `k` statements, for
// every k — the "prefix states" a crash is allowed to land on.
std::vector<std::string> PrefixDumps(const std::vector<std::string>& stmts) {
  std::vector<std::string> dumps;
  Engine engine;
  auto dump = engine.DumpScript();
  EXPECT_TRUE(dump.ok());
  dumps.push_back(*dump);
  for (const std::string& stmt : stmts) {
    auto executed = engine.Execute(stmt);
    EXPECT_TRUE(executed.ok()) << stmt << ": " << executed.status();
    dump = engine.DumpScript();
    EXPECT_TRUE(dump.ok());
    dumps.push_back(*dump);
  }
  return dumps;
}

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "viewauth_torture_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

TEST_F(CrashTortureTest, AppendCrashAtEveryByteBoundary) {
  const std::vector<std::string> stmts = SeededWorkload(20260806);
  const std::vector<std::string> prefix_dumps = PrefixDumps(stmts);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Dry run to learn how many bytes the full workload appends.
  uint64_t total_bytes = 0;
  {
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (const std::string& stmt : stmts) {
      ASSERT_TRUE((*durable)->Execute(stmt).ok()) << stmt;
    }
    total_bytes = fs.bytes_written();
  }
  ASSERT_GT(total_bytes, 0u);

  for (uint64_t crash_at = 0; crash_at <= total_bytes; ++crash_at) {
    std::remove(path_.c_str());
    FaultInjectingFileSystem fs(FileSystem::Default());
    fs.set_crash_after_bytes(static_cast<int64_t>(crash_at));
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    if (durable.ok()) {
      for (const std::string& stmt : stmts) {
        auto executed = (*durable)->Execute(stmt);
        if (!executed.ok()) {
          // Fail stop: once an append tears, the engine must refuse
          // further mutations rather than diverge from disk.
          EXPECT_TRUE((*durable)->degraded())
              << "crash offset " << crash_at;
          break;
        }
      }
    }

    // "Restart the process": reopen on the real filesystem in salvage
    // mode, exactly as an operator would after a crash.
    DurableOptions reopen;
    reopen.recovery = RecoveryMode::kSalvage;
    auto recovered = DurableEngine::Open(path_, reopen);
    ASSERT_TRUE(recovered.ok())
        << "crash offset " << crash_at << ": " << recovered.status();
    const RecoveryReport& report = (*recovered)->recovery_report();
    ASSERT_LE(report.records_replayed, stmts.size())
        << "crash offset " << crash_at;
    auto dump = (*recovered)->engine().DumpScript();
    ASSERT_TRUE(dump.ok()) << "crash offset " << crash_at;
    // The recovered catalog is exactly the state after the first
    // `records_replayed` applied statements — a prefix, nothing else.
    EXPECT_EQ(*dump, prefix_dumps[report.records_replayed])
        << "crash offset " << crash_at << " (report: " << report.ToString()
        << ")";
  }
}

TEST_F(CrashTortureTest, CompactionCrashAtEveryFaultPoint) {
  const std::vector<std::string> stmts = SeededWorkload(8062026);

  // Build the pristine pre-compaction log and remember the full state.
  std::string full_dump;
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (const std::string& stmt : stmts) {
      ASSERT_TRUE((*durable)->Execute(stmt).ok()) << stmt;
    }
    auto dump = (*durable)->engine().DumpScript();
    ASSERT_TRUE(dump.ok());
    full_dump = *dump;
  }
  const std::string pristine = ReadAll(path_);

  // Dry run to learn how many bytes a compaction stages.
  uint64_t staged_bytes = 0;
  {
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    ASSERT_TRUE((*durable)->Compact().ok());
    staged_bytes = fs.bytes_written();
  }
  ASSERT_GT(staged_bytes, 0u);

  // Crash while writing <path>.tmp, at every byte boundary. The rename
  // never commits, so the original log must be byte-identical and a
  // strict reopen must see the full pre-crash state.
  for (uint64_t crash_at = 0; crash_at < staged_bytes; ++crash_at) {
    WriteAll(path_, pristine);
    FaultInjectingFileSystem fs(FileSystem::Default());
    fs.set_crash_after_bytes(static_cast<int64_t>(crash_at));
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok())
        << "crash offset " << crash_at << ": " << durable.status();
    EXPECT_FALSE((*durable)->Compact().ok()) << "crash offset " << crash_at;
    EXPECT_EQ(ReadAll(path_), pristine) << "crash offset " << crash_at;

    auto recovered = DurableEngine::Open(path_);  // strict: no damage
    ASSERT_TRUE(recovered.ok())
        << "crash offset " << crash_at << ": " << recovered.status();
    auto dump = (*recovered)->engine().DumpScript();
    ASSERT_TRUE(dump.ok());
    EXPECT_EQ(*dump, full_dump) << "crash offset " << crash_at;
    // The reopen also cleared the half-staged temp file.
    EXPECT_FALSE(FileSystem::Default()->FileExists(path_ + ".tmp"));
  }

  // Transient fsync failure while staging: compaction reports the error,
  // the engine stays live (the historical closed-handle bug), and later
  // appends land in the original log.
  {
    WriteAll(path_, pristine);
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok());
    fs.FailNextSync();
    EXPECT_FALSE((*durable)->Compact().ok());
    EXPECT_FALSE((*durable)->degraded());
    ASSERT_TRUE((*durable)->Execute("insert into R values (90, 1)").ok());
    auto recovered = DurableEngine::Open(path_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ((*recovered)->engine().db().GetRelation("R").value()->size(),
              (*durable)->engine().db().GetRelation("R").value()->size());
  }

  // Transient rename failure at the commit point: same liveness
  // guarantees, original log untouched.
  {
    WriteAll(path_, pristine);
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok());
    fs.FailNextRename();
    EXPECT_FALSE((*durable)->Compact().ok());
    EXPECT_FALSE((*durable)->degraded());
    EXPECT_EQ(ReadAll(path_), pristine);
    ASSERT_TRUE((*durable)->Execute("insert into R values (91, 2)").ok());
  }

  // And the no-fault run: compaction commits atomically, the compacted
  // log is framed V3 and reproduces the full state.
  {
    WriteAll(path_, pristine);
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Compact().ok());
    auto recovered = DurableEngine::Open(path_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto dump = (*recovered)->engine().DumpScript();
    ASSERT_TRUE(dump.ok());
    EXPECT_EQ(*dump, full_dump);
  }
}

}  // namespace
}  // namespace viewauth
