// Tests for drop statements and the restrict semantics protecting stored
// views.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

class DropTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation T (A int key, B int)
      relation U (C int key)
      insert into T values (1, 2)
      view VT (T.A, T.B) where T.B > 0
      permit VT to u
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Engine engine_;
};

TEST_F(DropTest, Parsing) {
  auto rel = ParseStatement("drop relation T");
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(std::get<DropStmt>(*rel).is_view);
  EXPECT_EQ(std::get<DropStmt>(*rel).ToString(), "drop relation T");
  auto view = ParseStatement("drop view V");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(std::get<DropStmt>(*view).is_view);
  EXPECT_FALSE(ParseStatement("drop table T").ok());
  EXPECT_FALSE(ParseStatement("drop").ok());
}

TEST_F(DropTest, DropViewRemovesGrants) {
  auto out = engine_.Execute("drop view VT");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "dropped view VT");
  EXPECT_FALSE(engine_.catalog().HasView("VT"));
  auto denied = engine_.Execute("retrieve (T.A) as u");
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(engine_.last_result()->denied);
  EXPECT_TRUE(engine_.Execute("drop view VT").status().IsNotFound());
}

TEST_F(DropTest, DropRelationRestrictedByViews) {
  auto blocked = engine_.Execute("drop relation T");
  ASSERT_TRUE(blocked.status().IsInvalidArgument());
  EXPECT_NE(blocked.status().message().find("VT"), std::string::npos);
  EXPECT_TRUE(engine_.db().HasRelation("T"));

  // Unreferenced relations drop fine.
  ASSERT_TRUE(engine_.Execute("drop relation U").ok());
  EXPECT_FALSE(engine_.db().HasRelation("U"));

  // After dropping the view, the relation can go too.
  ASSERT_TRUE(engine_.Execute("drop view VT").ok());
  ASSERT_TRUE(engine_.Execute("drop relation T").ok());
  EXPECT_FALSE(engine_.db().HasRelation("T"));
}

TEST_F(DropTest, CompiledViewsSurviveSchemaChurn) {
  // Stored views capture their schemas by value: dropping and recreating
  // an *unrelated* relation must not disturb an existing view's
  // compiled form.
  ASSERT_TRUE(engine_.Execute("drop relation U").ok());
  ASSERT_TRUE(engine_.Execute("relation U (C int key, D int)").ok());
  auto out = engine_.Execute("retrieve (T.A, T.B) as u");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(engine_.last_result()->denied);
  EXPECT_EQ(engine_.last_result()->answer.size(), 1);
}

}  // namespace
}  // namespace viewauth
