// Unit tests for schemas, tuples, relations and database instances.

#include <gtest/gtest.h>

#include "schema/schema.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace viewauth {
namespace {

RelationSchema MakeEmployeeSchema() {
  return RelationSchema::Make("EMPLOYEE",
                              {{"NAME", ValueType::kString},
                               {"TITLE", ValueType::kString},
                               {"SALARY", ValueType::kInt64}},
                              {0})
      .value();
}

TEST(RelationSchema, MakeValidations) {
  EXPECT_FALSE(RelationSchema::Make("", {{"A", ValueType::kInt64}}).ok());
  EXPECT_FALSE(RelationSchema::Make("R", {}).ok());
  EXPECT_FALSE(RelationSchema::Make("R", {{"A", ValueType::kInt64},
                                          {"A", ValueType::kString}})
                   .ok());
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"", ValueType::kInt64}}).ok());
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"A", ValueType::kInt64}}, {1}).ok());
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"A", ValueType::kInt64}}, {0, 0}).ok());
  EXPECT_TRUE(
      RelationSchema::Make("R", {{"A", ValueType::kInt64}}, {0}).ok());
}

TEST(RelationSchema, Accessors) {
  RelationSchema schema = MakeEmployeeSchema();
  EXPECT_EQ(schema.arity(), 3);
  EXPECT_EQ(schema.AttributeIndex("TITLE"), 1);
  EXPECT_EQ(schema.AttributeIndex("title"), -1);  // case-sensitive
  EXPECT_TRUE(schema.has_key());
  EXPECT_TRUE(schema.IsKeyAttribute(0));
  EXPECT_FALSE(schema.IsKeyAttribute(2));
  EXPECT_EQ(schema.ToString(), "EMPLOYEE = (NAME, TITLE, SALARY)");
}

TEST(DatabaseSchema, AddDropGet) {
  DatabaseSchema db;
  EXPECT_TRUE(db.AddRelation(MakeEmployeeSchema()).ok());
  EXPECT_TRUE(db.AddRelation(MakeEmployeeSchema()).IsAlreadyExists());
  EXPECT_TRUE(db.HasRelation("EMPLOYEE"));
  auto fetched = db.GetRelation("EMPLOYEE");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->name(), "EMPLOYEE");
  EXPECT_TRUE(db.GetRelation("NOPE").status().IsNotFound());
  EXPECT_TRUE(db.DropRelation("EMPLOYEE").ok());
  EXPECT_FALSE(db.HasRelation("EMPLOYEE"));
  EXPECT_TRUE(db.DropRelation("EMPLOYEE").IsNotFound());
}

TEST(Tuple, ConcatAndProject) {
  Tuple a({Value::Int64(1), Value::String("x")});
  Tuple b({Value::Int64(2)});
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 3);
  EXPECT_EQ(c.at(2), Value::Int64(2));
  Tuple p = c.Project({2, 0});
  EXPECT_EQ(p, Tuple({Value::Int64(2), Value::Int64(1)}));
  // Duplicating columns is allowed.
  EXPECT_EQ(c.Project({0, 0}).arity(), 2);
}

TEST(Tuple, OrderingAndHash) {
  Tuple a({Value::Int64(1), Value::Int64(2)});
  Tuple b({Value::Int64(1), Value::Int64(3)});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(Tuple({Value::Int64(1)}) < a);  // shorter first on prefix
  EXPECT_EQ(a.Hash(), Tuple({Value::Int64(1), Value::Int64(2)}).Hash());
}

TEST(Relation, SetSemantics) {
  Relation rel(MakeEmployeeSchema());
  Tuple t({Value::String("Jones"), Value::String("manager"),
           Value::Int64(26000)});
  EXPECT_TRUE(rel.Insert(t).ok());
  EXPECT_TRUE(rel.Insert(t).ok());  // duplicate absorbed
  EXPECT_EQ(rel.size(), 1);
  EXPECT_TRUE(rel.Contains(t));
  EXPECT_TRUE(rel.Erase(t));
  EXPECT_FALSE(rel.Erase(t));
  EXPECT_TRUE(rel.empty());
}

TEST(Relation, SchemaValidation) {
  Relation rel(MakeEmployeeSchema());
  // Wrong arity.
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("x")})).IsSchemaMismatch());
  // Wrong type.
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("x"), Value::Int64(1),
                                Value::Int64(1)}))
                  .IsSchemaMismatch());
  // NULLs are allowed anywhere (masked cells).
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("x"), Value::Null(),
                                Value::Null()}))
                  .ok());
  // int64 accepted for double columns.
  Relation d(RelationSchema::Make("D", {{"X", ValueType::kDouble}}).value());
  EXPECT_TRUE(d.Insert(Tuple({Value::Int64(3)})).ok());
}

TEST(Relation, PrimaryKeyViolation) {
  Relation rel(MakeEmployeeSchema());
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("Jones"),
                                Value::String("manager"),
                                Value::Int64(26000)}))
                  .ok());
  // Same key, different payload: rejected.
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("Jones"),
                                Value::String("engineer"),
                                Value::Int64(30000)}))
                  .IsSchemaMismatch());
  // Exactly identical tuple: absorbed, no error.
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("Jones"),
                                Value::String("manager"),
                                Value::Int64(26000)}))
                  .ok());
}

TEST(Relation, SameTuplesAndSortedRows) {
  Relation a(MakeEmployeeSchema());
  Relation b(MakeEmployeeSchema());
  Tuple t1({Value::String("A"), Value::String("t"), Value::Int64(1)});
  Tuple t2({Value::String("B"), Value::String("t"), Value::Int64(2)});
  ASSERT_TRUE(a.Insert(t1).ok());
  ASSERT_TRUE(a.Insert(t2).ok());
  ASSERT_TRUE(b.Insert(t2).ok());
  EXPECT_FALSE(a.SameTuples(b));
  ASSERT_TRUE(b.Insert(t1).ok());
  EXPECT_TRUE(a.SameTuples(b));
  std::vector<Tuple> sorted = b.SortedRows();
  EXPECT_EQ(sorted.front(), t1);
  EXPECT_EQ(sorted.back(), t2);
}

TEST(Relation, ColumnIndexLookup) {
  Relation rel(MakeEmployeeSchema());
  ASSERT_TRUE(rel.Insert(Tuple({Value::String("Jones"),
                                Value::String("manager"),
                                Value::Int64(26000)}))
                  .ok());
  ASSERT_TRUE(rel.Insert(Tuple({Value::String("Smith"),
                                Value::String("manager"),
                                Value::Int64(22000)}))
                  .ok());
  ASSERT_TRUE(rel.Insert(Tuple({Value::String("Brown"),
                                Value::String("engineer"),
                                Value::Int64(32000)}))
                  .ok());
  const Relation::ColumnIndex& by_title = rel.IndexOn(1);
  EXPECT_EQ(by_title.count(Value::String("manager")), 2u);
  EXPECT_EQ(by_title.count(Value::String("engineer")), 1u);
  EXPECT_EQ(by_title.count(Value::String("nobody")), 0u);
  // Row ids point back into rows().
  auto [lo, hi] = by_title.equal_range(Value::String("engineer"));
  ASSERT_NE(lo, hi);
  EXPECT_EQ(rel.rows()[static_cast<size_t>(lo->second)].at(0),
            Value::String("Brown"));
}

TEST(Relation, ColumnIndexInvalidatesOnMutation) {
  Relation rel(MakeEmployeeSchema());
  Tuple jones({Value::String("Jones"), Value::String("manager"),
               Value::Int64(26000)});
  ASSERT_TRUE(rel.Insert(jones).ok());
  EXPECT_EQ(rel.IndexOn(0).count(Value::String("Jones")), 1u);
  ASSERT_TRUE(rel.Erase(jones));
  EXPECT_EQ(rel.IndexOn(0).count(Value::String("Jones")), 0u);
  ASSERT_TRUE(rel.Insert(jones).ok());
  EXPECT_EQ(rel.IndexOn(0).count(Value::String("Jones")), 1u);
  rel.Clear();
  EXPECT_EQ(rel.IndexOn(0).count(Value::String("Jones")), 0u);
}

TEST(Relation, OrderedIndex) {
  Relation rel(MakeEmployeeSchema());
  for (auto [name, salary] : {std::pair{"Jones", 26000},
                              {"Smith", 22000},
                              {"Brown", 32000}}) {
    ASSERT_TRUE(rel.Insert(Tuple({Value::String(name), Value::String("t"),
                                  Value::Int64(salary)}))
                    .ok());
  }
  const Relation::OrderedIndex& by_salary = rel.OrderedIndexOn(2);
  ASSERT_EQ(by_salary.size(), 3u);
  EXPECT_EQ(by_salary[0].first, Value::Int64(22000));
  EXPECT_EQ(by_salary[2].first, Value::Int64(32000));
  // Binary search finds the >= 26000 suffix.
  auto begin = std::lower_bound(
      by_salary.begin(), by_salary.end(), Value::Int64(26000),
      [](const std::pair<Value, int>& e, const Value& v) {
        return e.first < v;
      });
  EXPECT_EQ(by_salary.end() - begin, 2);
  // Mutations invalidate.
  ASSERT_TRUE(rel.Erase(Tuple({Value::String("Brown"), Value::String("t"),
                               Value::Int64(32000)})));
  EXPECT_EQ(rel.OrderedIndexOn(2).size(), 2u);
}

TEST(DatabaseInstance, CreateInsertDrop) {
  DatabaseInstance db;
  EXPECT_TRUE(db.CreateRelation(MakeEmployeeSchema()).ok());
  EXPECT_TRUE(db.CreateRelation(MakeEmployeeSchema()).IsAlreadyExists());
  EXPECT_TRUE(db.HasRelation("EMPLOYEE"));
  EXPECT_TRUE(db.Insert("EMPLOYEE",
                        Tuple({Value::String("Jones"),
                               Value::String("manager"),
                               Value::Int64(26000)}))
                  .ok());
  EXPECT_TRUE(db.Insert("NOPE", Tuple({})).IsNotFound());
  auto rel = db.GetRelation("EMPLOYEE");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 1);
  EXPECT_TRUE(db.DropRelation("EMPLOYEE").ok());
  EXPECT_FALSE(db.HasRelation("EMPLOYEE"));
}

}  // namespace
}  // namespace viewauth
