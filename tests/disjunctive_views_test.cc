// Tests for disjunctive views (paper conclusion (2)): `or`-separated
// conjunctive branches under one grant name.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

TEST(DisjunctiveParsing, OrBranches) {
  auto stmt = ParseStatement(
      "view V (R.A) where R.B = 1 and R.C = 2 or R.B = 3 or R.C > 9");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& view = std::get<ViewStmt>(*stmt);
  EXPECT_EQ(view.conditions.size(), 2u);
  ASSERT_EQ(view.or_branches.size(), 2u);
  EXPECT_EQ(view.or_branches[0].size(), 1u);
  EXPECT_EQ(view.or_branches[1].size(), 1u);
  // Round trip.
  auto reparsed = ParseStatement(view.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(std::get<ViewStmt>(*reparsed).ToString(), view.ToString());
}

TEST(DisjunctiveParsing, OrWithoutWhereRejected) {
  EXPECT_FALSE(ParseStatement("view V (R.A) or R.B = 1").ok());
}

class DisjunctiveViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
      insert into EMPLOYEE values (Jones, manager, 26000)
      insert into EMPLOYEE values (Smith, technician, 22000)
      insert into EMPLOYEE values (Brown, engineer, 32000)

      view JUNIOR_OR_MGR (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
        where EMPLOYEE.SALARY < 25000
        or EMPLOYEE.TITLE = manager
      permit JUNIOR_OR_MGR to auditor
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Engine engine_;
};

TEST_F(DisjunctiveViewsTest, UnionOfBranchesDelivered) {
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY) "
      "as auditor");
  ASSERT_TRUE(out.ok()) << out.status();
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_FALSE(result->denied);
  // Smith (22k, branch 1) and Jones (manager, branch 2) flow; Brown does
  // not match either branch.
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Smith"), Value::String("technician"),
             Value::Int64(22000)})));
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Jones"), Value::String("manager"),
             Value::Int64(26000)})));
  for (const Tuple& row : result->answer.rows()) {
    EXPECT_NE(row.at(0), Value::String("Brown"));
  }
}

// Without TITLE in the request, branch 2's mask is inexpressible and the
// base algorithm drops it (only Smith flows); the extended-mask option
// recovers Jones with a permit naming TITLE.
TEST_F(DisjunctiveViewsTest, BranchNeedingExtraAttribute) {
  auto base = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as auditor");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(engine_.last_result()->answer.size(), 1);

  engine_.options().extended_masks = true;
  auto extended = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as auditor");
  ASSERT_TRUE(extended.ok());
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Smith"), Value::Int64(22000)})));
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Jones"), Value::Int64(26000)})));
}

TEST_F(DisjunctiveViewsTest, BranchesRefineIndependently) {
  // A query inside branch 1's range clears that branch's restriction.
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.SALARY < 23000 as auditor");
  ASSERT_TRUE(out.ok());
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_FALSE(result->denied);
  EXPECT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Smith"), Value::Int64(22000)})));
}

TEST_F(DisjunctiveViewsTest, GroupGrantAndDenyAtomicity) {
  ASSERT_TRUE(engine_.Execute("deny JUNIOR_OR_MGR to auditor").ok());
  auto out = engine_.Execute("retrieve (EMPLOYEE.NAME) as auditor");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(engine_.last_result()->denied);
}

TEST_F(DisjunctiveViewsTest, DropViewRemovesAllBranches) {
  ASSERT_TRUE(engine_.catalog().DropView("JUNIOR_OR_MGR").ok());
  EXPECT_FALSE(engine_.catalog().HasView("JUNIOR_OR_MGR"));
  auto out = engine_.Execute("retrieve (EMPLOYEE.NAME) as auditor");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(engine_.last_result()->denied);
}

TEST_F(DisjunctiveViewsTest, ContradictoryBranchSkipped) {
  auto setup = engine_.ExecuteScript(R"(
    view PARTIAL (EMPLOYEE.NAME)
      where EMPLOYEE.SALARY > 5 and EMPLOYEE.SALARY < 3
      or EMPLOYEE.TITLE = engineer
    permit PARTIAL to viewer
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto branches = engine_.catalog().GetViewBranches("PARTIAL");
  ASSERT_TRUE(branches.ok());
  EXPECT_EQ(branches->size(), 1u);  // the contradictory branch vanished
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.TITLE = engineer as viewer");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(engine_.last_result()->denied);
}

TEST_F(DisjunctiveViewsTest, AllBranchesContradictoryRejected) {
  auto out = engine_.Execute(
      "view BAD (EMPLOYEE.NAME) "
      "where EMPLOYEE.SALARY > 5 and EMPLOYEE.SALARY < 3 "
      "or EMPLOYEE.SALARY > 9 and EMPLOYEE.SALARY < 7");
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST_F(DisjunctiveViewsTest, MaskLabelsUseGrantName) {
  auto query_stmt = ParseStatement(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_TRUE(query_stmt.ok());
  auto query = ConjunctiveQuery::FromRetrieve(
      engine_.db().schema(), std::get<RetrieveStmt>(*query_stmt));
  ASSERT_TRUE(query.ok());
  Authorizer authorizer(&engine_.db(), &engine_.catalog());
  auto mask = authorizer.DeriveMask("auditor", *query);
  ASSERT_TRUE(mask.ok());
  for (const MetaTuple& tuple : mask->tuples()) {
    EXPECT_TRUE(tuple.views().contains("JUNIOR_OR_MGR"))
        << tuple.ViewLabel();
  }
}

}  // namespace
}  // namespace viewauth
