// Network torture tier (run separately by tools/check.sh, and under
// ASan+UBSan/TSan).
//
// The wire server against a hostile network: short reads and writes on
// both sides, mid-frame disconnects, byte-level corruption in flight,
// stalled peers, a seeded protocol fuzzer, and — the headline — a
// kill-the-server-under-concurrent-load crash where every mutation a
// client saw acknowledged over the wire must be in the recovered
// durable state. Every fault is fatal at most to its own connection:
// after each one, a fresh well-behaved client must get correct answers.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file.h"
#include "server/client.h"
#include "server/server.h"

namespace viewauth {
namespace {

const char* kSeedScript = R"(
  relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
  insert into EMPLOYEE values (Jones, manager, 26000)
  insert into EMPLOYEE values (Smith, clerk, 18000)
  view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
  permit SAE to Brown
)";

constexpr const char* kProbeQuery = "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)";

// A fresh well-behaved client must get the full correct answer — the
// canary asserted after every injected fault.
void ExpectHealthyService(int port) {
  auto client = Client::ConnectTcp("127.0.0.1", port, "Brown");
  ASSERT_TRUE(client.ok()) << client.status();
  auto out = (*client)->Execute(kProbeQuery);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("Jones"), std::string::npos);
  EXPECT_NE(out->find("Smith"), std::string::npos);
}

std::unique_ptr<Server> StartServer(Engine* engine, ServerOptions options) {
  auto server = std::make_unique<Server>(engine, options);
  auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  EXPECT_TRUE(server->Start(std::move(*listener)).ok());
  return server;
}

TEST(NetworkTortureTest, ShortReadsAndWritesOnBothSides) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  // Server side: every accepted socket reads and writes at most 3 bytes
  // per syscall, so each frame crosses the wire in dozens of fragments.
  auto server_plan = std::make_shared<SocketFaultPlan>();
  server_plan->set_max_read_chunk(3);
  server_plan->set_max_write_chunk(3);
  ServerOptions options;
  options.socket_wrapper = [&](std::unique_ptr<Socket> socket) {
    return std::unique_ptr<Socket>(
        new FaultInjectingSocket(std::move(socket), server_plan));
  };
  auto server = StartServer(&engine, options);

  // Client side too: both directions fragment independently.
  auto client_plan = std::make_shared<SocketFaultPlan>();
  client_plan->set_max_read_chunk(2);
  client_plan->set_max_write_chunk(2);
  auto raw = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(raw.ok()) << raw.status();
  auto client = Client::Wrap(
      std::make_unique<FaultInjectingSocket>(std::move(*raw), client_plan),
      "Brown");
  ASSERT_TRUE(client.ok()) << client.status();

  for (int i = 0; i < 5; ++i) {
    auto out = (*client)->Execute(kProbeQuery);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_NE(out->find("Jones"), std::string::npos);
  }
  EXPECT_GT(client_plan->bytes_read(), 0u);
  EXPECT_GT(server_plan->bytes_written(), 0u);
  server->Stop();
  EXPECT_EQ(engine.snapshots_live(), 1);
}

TEST(NetworkTortureTest, MidFrameDisconnectIsFatalOnlyToThatConnection) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  auto server = StartServer(&engine, {});

  // Half a hello frame, then the "client" dies.
  {
    auto socket = ConnectTcp("127.0.0.1", server->port(), 1000);
    ASSERT_TRUE(socket.ok());
    const std::string frame = EncodeFrame(FrameType::kHello, "Brown");
    ASSERT_TRUE(WriteFully(*(*socket), frame.substr(0, 10), 1000).ok());
  }  // socket closes here, mid-frame

  ExpectHealthyService(server->port());
  // The torn connection was scored as a protocol error, not a crash.
  for (int i = 0; i < 100 && server->stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server->stats().protocol_errors, 1);
  server->Stop();
  EXPECT_EQ(engine.snapshots_live(), 1);
}

TEST(NetworkTortureTest, InFlightCorruptionIsCaughtByTheCrc) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  auto server = StartServer(&engine, {});

  // Flip one bit of the SECOND frame the client sends (the request):
  // the hello is 8 + 1 + 5 = 14 bytes, so offset 20 lands inside the
  // request frame. The server's CRC check catches it before parsing;
  // the connection is poisoned, the server is not.
  auto plan = std::make_shared<SocketFaultPlan>();
  plan->set_corrupt_write_byte(20, 0x40);
  auto raw = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(raw.ok());
  auto client = Client::Wrap(
      std::make_unique<FaultInjectingSocket>(std::move(*raw), plan), "Brown");
  ASSERT_TRUE(client.ok()) << client.status();

  auto out = (*client)->Execute(kProbeQuery);
  ASSERT_FALSE(out.ok());
  EXPECT_FALSE((*client)->alive());
  EXPECT_EQ(plan->faults_injected(), 1u);

  ExpectHealthyService(server->port());
  EXPECT_GE(server->stats().protocol_errors, 1);
  server->Stop();
  EXPECT_EQ(engine.snapshots_live(), 1);
}

TEST(NetworkTortureTest, HostileLengthPrefixAllocatesNothing) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  auto server = StartServer(&engine, {});

  auto socket = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(socket.ok());
  std::string header;
  const uint32_t huge = 0xfffffff0u;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  header.append(4, '\0');
  ASSERT_TRUE(WriteFully(*(*socket), header, 1000).ok());
  // The server answers with a connection-final error frame naming the
  // cap — it did not try to read (or allocate) 4GB.
  auto read = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 5000, 1000);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->type, FrameType::kError);
  EXPECT_NE(read->payload.find("exceeds"), std::string::npos);

  ExpectHealthyService(server->port());
  server->Stop();
}

TEST(NetworkTortureTest, StalledPeerIsEvictedNotWaitedOnForever) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  ServerOptions options;
  options.io_timeout_ms = 100;
  options.idle_timeout_ms = 300;
  auto server = StartServer(&engine, options);

  // Stall 1: a peer that starts a frame and never finishes it. The
  // mid-frame stall trips io_timeout_ms, not the (longer) idle timeout.
  {
    auto socket = ConnectTcp("127.0.0.1", server->port(), 1000);
    ASSERT_TRUE(socket.ok());
    const std::string frame = EncodeFrame(FrameType::kHello, "Brown");
    ASSERT_TRUE(WriteFully(*(*socket), frame.substr(0, 5), 1000).ok());
    auto read = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 2000, 1000);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(read->type, FrameType::kError);
    EXPECT_NE(read->payload.find("stalled"), std::string::npos);
  }

  // Stall 2: a connected peer that never sends anything is evicted
  // after idle_timeout_ms with an explicit eviction notice.
  {
    auto socket = ConnectTcp("127.0.0.1", server->port(), 1000);
    ASSERT_TRUE(socket.ok());
    auto read = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 3000, 1000);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(read->type, FrameType::kError);
    EXPECT_NE(read->payload.find("idle"), std::string::npos);
  }

  ExpectHealthyService(server->port());
  ServerStats stats = server->stats();
  EXPECT_GE(stats.connections_evicted, 1);
  EXPECT_GE(stats.read_timeouts, 1);
  server->Stop();
}

// Satellite (b): the protocol fuzz regression. A seeded corpus of
// malformed, truncated, oversized and garbage frames must never crash
// or wedge the server; interleaved well-behaved probes must keep
// getting correct answers throughout.
TEST(NetworkTortureTest, FuzzedFramesNeverCrashOrWedgeTheServer) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(kSeedScript).ok());
  ServerOptions options;
  // Tight timeouts so a fuzz connection that leaves the server waiting
  // mid-frame is reaped quickly instead of parking a session thread.
  options.io_timeout_ms = 50;
  options.idle_timeout_ms = 100;
  auto server = StartServer(&engine, options);

  std::mt19937 rng(0x5eed5eedu);  // fixed seed: a regression corpus
  const std::string valid_hello = EncodeFrame(FrameType::kHello, "Brown");
  RequestPayload valid_request;
  valid_request.id = 1;
  valid_request.statement = kProbeQuery;
  const std::string valid_frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(valid_request));

  for (int iteration = 0; iteration < 300; ++iteration) {
    auto socket = ConnectTcp("127.0.0.1", server->port(), 1000);
    ASSERT_TRUE(socket.ok()) << "iteration " << iteration << ": "
                             << socket.status();
    std::string blob;
    switch (iteration % 5) {
      case 0: {  // pure garbage
        const size_t len = rng() % 64;
        for (size_t i = 0; i < len; ++i) {
          blob.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      }
      case 1: {  // a valid frame truncated at a random point
        blob = valid_hello + valid_frame;
        blob.resize(rng() % blob.size());
        break;
      }
      case 2: {  // a valid exchange with one byte flipped
        blob = valid_hello + valid_frame;
        blob[rng() % blob.size()] ^= static_cast<char>(1 + (rng() % 255));
        break;
      }
      case 3: {  // random claimed length, insufficient body
        const uint32_t claimed = rng() % (8u << 20);
        for (int i = 0; i < 4; ++i) {
          blob.push_back(static_cast<char>((claimed >> (8 * i)) & 0xff));
        }
        for (int i = 0; i < 4; ++i) {
          blob.push_back(static_cast<char>(rng() & 0xff));
        }
        const size_t body = rng() % 32;
        for (size_t i = 0; i < body; ++i) {
          blob.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      }
      case 4: {  // valid hello, then garbage where a request should be
        blob = valid_hello;
        const size_t len = 8 + rng() % 32;
        for (size_t i = 0; i < len; ++i) {
          blob.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      }
    }
    // Best effort: the server may already have slammed the connection.
    (void)WriteFully(*(*socket), blob, 250);
    (*socket)->Close();

    if (iteration % 25 == 24) ExpectHealthyService(server->port());
  }

  ExpectHealthyService(server->port());
  server->Stop();
  EXPECT_EQ(engine.snapshots_live(), 1);
  EXPECT_FALSE(server->running());
}

// The headline: kill the durable backend (torn write + dead filesystem)
// while concurrent wire clients are inserting. Every insert a client
// saw ACKNOWLEDGED over the wire must be present after recovery, the
// recovered set must not contain anything never attempted, and per
// client the recovered ids must form a contiguous prefix (batch
// atomicity end to end through the wire path).
TEST(NetworkTortureTest, KillServerUnderConcurrentLoad) {
  const std::string path = ::testing::TempDir() + "viewauth_net_kill.log";
  std::remove(path.c_str());
  constexpr int kWriters = 4;
  constexpr int kInsertsPerWriter = 40;
  auto id_of = [](int writer, int i) { return (writer + 1) * 1000 + i; };

  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions durable_options;
  durable_options.fs = &fs;
  auto durable = DurableEngine::Open(path, durable_options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (I int key)").ok());

  Server server(durable->get());
  auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(server.Start(std::move(*listener)).ok());
  const int port = server.port();

  // The machine dies a few hundred log bytes into the load — mid-run,
  // possibly mid-batch.
  fs.set_crash_after_bytes(static_cast<int64_t>(fs.bytes_written()) + 700);

  std::vector<std::vector<int>> acked(kWriters);
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      auto client = Client::ConnectTcp("127.0.0.1", port, "admin");
      if (!client.ok()) return;
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        auto out = (*client)->Execute("insert into T values (" +
                                      std::to_string(id_of(t, i)) + ")");
        if (!out.ok()) break;  // degraded mode: Unavailable reply
        acked[t].push_back(id_of(t, i));
      }
    });
  }
  for (auto& writer : writers) writer.join();

  EXPECT_TRUE(fs.crashed()) << "crash budget never hit — raise the load";
  EXPECT_TRUE((*durable)->degraded());
  // Retrieves still answer from the last durable state while degraded.
  {
    auto admin = Client::ConnectTcp("127.0.0.1", port, "admin");
    ASSERT_TRUE(admin.ok()) << admin.status();
    EXPECT_TRUE((*admin)->Execute("retrieve (T.I) as admin").ok());
  }
  server.Stop();
  durable->reset();

  // "Restart the process": strict reopen on the real filesystem,
  // salvage when the torn tail demands it.
  auto recovered = DurableEngine::Open(path);
  if (!recovered.ok()) {
    DurableOptions salvage;
    salvage.recovery = RecoveryMode::kSalvage;
    recovered = DurableEngine::Open(path, salvage);
  }
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto dump = (*recovered)->engine().DumpScript();
  ASSERT_TRUE(dump.ok()) << dump.status();
  std::set<int> recovered_ids;
  {
    const std::string needle = "insert into T values (";
    size_t pos = 0;
    while ((pos = dump->find(needle, pos)) != std::string::npos) {
      pos += needle.size();
      const size_t end = dump->find(')', pos);
      if (end == std::string::npos) break;
      recovered_ids.insert(std::stoi(dump->substr(pos, end - pos)));
    }
  }

  std::set<int> attempted;
  size_t acked_total = 0;
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kInsertsPerWriter; ++i) attempted.insert(id_of(t, i));
    acked_total += acked[t].size();
    // Acknowledged durability, end to end through the wire.
    for (int id : acked[t]) {
      ASSERT_TRUE(recovered_ids.count(id) > 0)
          << "insert " << id
          << " was acknowledged over the wire but lost after recovery "
          << "(report: " << (*recovered)->recovery_report().ToString() << ")";
    }
    // Contiguous per-writer prefix: a torn batch never applies halfway.
    bool gap = false;
    for (int i = 0; i < kInsertsPerWriter; ++i) {
      const bool present = recovered_ids.count(id_of(t, i)) > 0;
      if (!present) {
        gap = true;
      } else {
        ASSERT_FALSE(gap) << "hole before recovered id " << id_of(t, i);
      }
    }
  }
  // Nothing fabricated: recovery may extend past the acked set (a batch
  // fully on disk whose ack never reached the client), but only with
  // statements that were actually attempted.
  for (int id : recovered_ids) {
    ASSERT_TRUE(attempted.count(id) > 0) << "unexpected recovered id " << id;
  }
  // The crash landed mid-run: some inserts were acked, not all.
  EXPECT_GT(acked_total, 0u);
  EXPECT_LT(acked_total, static_cast<size_t>(kWriters * kInsertsPerWriter));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace viewauth
