// Tests for the authorization EXPLAIN trace.

#include <gtest/gtest.h>

#include "authz/authorizer.h"
#include "engine/engine.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

TEST(Explain, Example2StageCounts) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");
  auto trace = authorizer.Explain("Klein", query);
  ASSERT_TRUE(trace.ok()) << trace.status();

  // Three distinct relations feed the product.
  ASSERT_EQ(trace->operands.size(), 3u);
  // Klein's EMPLOYEE' holds ELP's tuple and EST's two tuples.
  for (const MaskTrace::OperandStage& stage : trace->operands) {
    if (stage.relation == "EMPLOYEE") {
      EXPECT_EQ(stage.view_tuples, 3);
    } else {
      EXPECT_EQ(stage.view_tuples, 1);  // ELP's PROJECT/ASSIGNMENT tuples
    }
  }
  // Pruning shrinks the product, selections never grow monotonically
  // beyond the variants bound, and the final mask is the single NAME
  // tuple.
  EXPECT_GT(trace->after_products, 0);
  EXPECT_LE(trace->after_dangling_prune, trace->after_products);
  ASSERT_EQ(trace->selections.size(), 4u);
  EXPECT_EQ(trace->selections[0].before, trace->after_dangling_prune);
  EXPECT_EQ(trace->final_mask, 1);

  std::string rendered = trace->ToString();
  EXPECT_NE(rendered.find("EMPLOYEE'"), std::string::npos);
  EXPECT_NE(rendered.find("final mask: 1"), std::string::npos);
  EXPECT_NE(rendered.find("select"), std::string::npos);
}

TEST(Explain, DeniedQueryTracesToEmptyMask) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query("retrieve (PROJECT.NUMBER)");
  auto trace = authorizer.Explain("Klein", query);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->operands.size(), 1u);
  EXPECT_EQ(trace->operands[0].view_tuples, 0);  // no usable views
  EXPECT_EQ(trace->final_mask, 0);
}

TEST(Explain, EngineFrontEnd) {
  PaperDatabase fixture;
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.SPONSOR = Acme
    permit PSA to Brown
  )");
  ASSERT_TRUE(setup.ok());
  auto out = engine.ExplainRetrieve(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) as Brown");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("explain for Brown"), std::string::npos);
  EXPECT_NE(out->find("final mask: 1"), std::string::npos);
  // Only retrieve statements can be explained.
  EXPECT_TRUE(engine.ExplainRetrieve("permit PSA to Klein")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace viewauth
