// Round-trip tests for Engine::DumpScript: dump + replay reproduces an
// equivalent engine (same data, same authorization behaviour).

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace viewauth {
namespace {

std::unique_ptr<Engine> BuildOriginal() {
  auto engine = std::make_unique<Engine>();
  auto setup = engine->ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    relation ASSIGNMENT (E_NAME string key, P_NO string key)

    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, 'lead technician', 22000)
    insert into PROJECT values (bq-45, Acme, 300000)
    insert into ASSIGNMENT values (Jones, bq-45)

    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
      where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
      and PROJECT.NUMBER = ASSIGNMENT.P_NO
      and PROJECT.BUDGET >= 250000
    view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
      where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE
    view MIXED (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY < 25000 or EMPLOYEE.TITLE = manager

    permit SAE to Brown
    permit EST to Klein
    permit MIXED to auditor
    permit SAE to editor for insert
    permit SAE to editor for delete
  )");
  EXPECT_TRUE(setup.ok()) << setup.status();
  return engine;
}

TEST(Persistence, DumpReplaysCleanly) {
  std::unique_ptr<Engine> original = BuildOriginal();
  auto dump = original->DumpScript();
  ASSERT_TRUE(dump.ok()) << dump.status();

  Engine restored;
  auto replay = restored.ExecuteScript(*dump);
  ASSERT_TRUE(replay.ok()) << replay.status() << "\nscript:\n" << *dump;

  // Same relations with the same rows.
  for (const char* rel : {"EMPLOYEE", "PROJECT", "ASSIGNMENT"}) {
    auto a = original->db().GetRelation(rel);
    auto b = restored.db().GetRelation(rel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE((*a)->SameTuples(**b)) << rel;
  }
  // Same views and grants.
  EXPECT_EQ(original->catalog().view_names(),
            restored.catalog().view_names());
  EXPECT_EQ(original->catalog().grants().size(),
            restored.catalog().grants().size());
  EXPECT_TRUE(restored.catalog().IsPermitted("editor", "SAE",
                                             AccessMode::kInsert));
}

TEST(Persistence, RestoredEngineAuthorizesIdentically) {
  std::unique_ptr<Engine> original = BuildOriginal();
  auto dump = original->DumpScript();
  ASSERT_TRUE(dump.ok());
  Engine restored;
  ASSERT_TRUE(restored.ExecuteScript(*dump).ok());

  const char* queries[] = {
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) as Brown",
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as auditor",
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE as Klein",
      "retrieve (PROJECT.NUMBER) as Brown",
  };
  for (const char* text : queries) {
    auto a = original->Execute(text);
    auto b = restored.Execute(text);
    ASSERT_TRUE(a.ok()) << text;
    ASSERT_TRUE(b.ok()) << text;
    EXPECT_EQ(*a, *b) << text;
  }
}

TEST(Persistence, DumpIsIdempotent) {
  std::unique_ptr<Engine> original = BuildOriginal();
  auto first = original->DumpScript();
  ASSERT_TRUE(first.ok());
  Engine restored;
  ASSERT_TRUE(restored.ExecuteScript(*first).ok());
  auto second = restored.DumpScript();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(Persistence, QuotedStringsSurvive) {
  std::unique_ptr<Engine> original = BuildOriginal();
  auto dump = original->DumpScript();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("'lead technician'"), std::string::npos);
}

}  // namespace
}  // namespace viewauth
