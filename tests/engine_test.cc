// Integration tests for the Section 6 front-end: statements in, masked
// relations and inferred permit statements out.

#include "engine/engine.h"

#include <gtest/gtest.h>

namespace viewauth {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
      insert into EMPLOYEE values (Jones, manager, 26000)
      insert into EMPLOYEE values (Brown, engineer, 32000)
      view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      permit SAE to Brown
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Engine engine_;
};

TEST_F(EngineTest, DdlConfirmations) {
  auto out = engine_.Execute("relation T (A int)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "created relation T");
  EXPECT_TRUE(engine_.Execute("relation T (A int)")
                  .status()
                  .IsAlreadyExists());
}

TEST_F(EngineTest, InsertCoercesBarewordNumbers) {
  // Values arrive as identifiers/strings; numeric columns coerce.
  ASSERT_TRUE(engine_.Execute("relation T (A int, B double)").ok());
  EXPECT_TRUE(engine_.Execute("insert into T values (5, 2)").ok());
  EXPECT_TRUE(
      engine_.Execute("insert into T values (x, 2)").status()
          .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("insert into T values (5)")
                  .status()
                  .IsSchemaMismatch());
}

TEST_F(EngineTest, RetrieveMasksAndDescribes) {
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) as Brown");
  ASSERT_TRUE(out.ok());
  // Names flow, titles are withheld.
  EXPECT_NE(out->find("Jones"), std::string::npos);
  EXPECT_EQ(out->find("manager"), std::string::npos);
  EXPECT_NE(out->find("permit (NAME)"), std::string::npos);
  ASSERT_NE(engine_.last_result(), nullptr);
  EXPECT_FALSE(engine_.last_result()->full_access);
  EXPECT_EQ(engine_.last_result()->answer.size(), 2);
}

TEST_F(EngineTest, RetrieveFullAccessHasNoPermits) {
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Brown");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("permit"), std::string::npos);
  ASSERT_NE(engine_.last_result(), nullptr);
  EXPECT_TRUE(engine_.last_result()->full_access);
}

TEST_F(EngineTest, RetrieveDenied) {
  auto out = engine_.Execute("retrieve (EMPLOYEE.NAME) as Nobody");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("permission denied"), std::string::npos);
  EXPECT_TRUE(engine_.last_result()->denied);
}

TEST_F(EngineTest, SessionUserAndAsClause) {
  engine_.SetSessionUser("Brown");
  auto out = engine_.Execute("retrieve (EMPLOYEE.SALARY)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("26,000"), std::string::npos);
  // The `as` clause overrides the session user.
  auto denied = engine_.Execute("retrieve (EMPLOYEE.SALARY) as Nobody");
  ASSERT_TRUE(denied.ok());
  EXPECT_NE(denied->find("permission denied"), std::string::npos);
}

TEST_F(EngineTest, DenyStatementRemovesAccess) {
  ASSERT_TRUE(engine_.Execute("deny SAE to Brown").ok());
  auto out = engine_.Execute("retrieve (EMPLOYEE.NAME) as Brown");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("permission denied"), std::string::npos);
  EXPECT_TRUE(
      engine_.Execute("deny SAE to Brown").status().IsNotFound());
}

TEST_F(EngineTest, ScriptErrorsPropagate) {
  auto out = engine_.ExecuteScript("permit NOPE to U");
  EXPECT_TRUE(out.status().IsNotFound());
  EXPECT_TRUE(engine_.ExecuteScript("gibberish").status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, OptionsArePluggable) {
  engine_.options().drop_fully_masked_rows = false;
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.TITLE) as Brown");  // nothing permitted
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("permission denied"), std::string::npos);
}

}  // namespace
}  // namespace viewauth
