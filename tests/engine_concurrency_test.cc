// Concurrent multi-session use of one Engine: reader threads retrieving
// as different users while a mutator thread flips grants and an insert
// thread loads rows. Exercises the statement-level shared/exclusive
// locking, the internally synchronized authorization cache, and the
// thread pool (run under -DVIEWAUTH_SANITIZE=thread by tools/check.sh).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace viewauth {
namespace {

TEST(EngineConcurrencyTest, ConcurrentRetrievesMutationsAndInserts) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)
    insert into EMPLOYEE values (Brown, engineer, 32000)
    view NAMES (EMPLOYEE.NAME)
    view ALL_E (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
    permit NAMES to Brown
    permit NAMES to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  engine.ResetAuthzStats();

  constexpr int kRetrievesPerReader = 40;
  constexpr int kMutations = 20;
  constexpr int kInserts = 30;
  std::atomic<int> failures{0};

  auto reader = [&](const std::string& user) {
    for (int i = 0; i < kRetrievesPerReader; ++i) {
      auto out = engine.Execute(
          "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as " + user);
      if (!out.ok()) failures.fetch_add(1);
    }
  };
  // Grants flip while retrieves run; every retrieve must still be served
  // from a mask consistent with SOME serialization of the statements.
  auto mutator = [&] {
    for (int i = 0; i < kMutations; ++i) {
      auto permit = engine.Execute("permit ALL_E to Klein");
      if (!permit.ok()) failures.fetch_add(1);
      auto deny = engine.Execute("deny ALL_E to Klein");
      if (!deny.ok()) failures.fetch_add(1);
    }
  };
  auto inserter = [&] {
    for (int i = 0; i < kInserts; ++i) {
      auto out = engine.Execute("insert into EMPLOYEE values (w" +
                                std::to_string(i) + ", worker, " +
                                std::to_string(20000 + i) + ")");
      if (!out.ok()) failures.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader, "Brown");
  threads.emplace_back(reader, "Klein");
  threads.emplace_back(mutator);
  threads.emplace_back(inserter);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2 * kRetrievesPerReader);
  EXPECT_EQ(stats.mask_hits + stats.mask_misses, stats.retrieves);

  // Quiesced state: Klein's grant cycle ended on deny, so Klein is back
  // to NAMES only; the final masks are consistent.
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_FALSE(engine.last_result()->full_access);
  EXPECT_FALSE(engine.last_result()->denied);
  // All inserted rows are present.
  ASSERT_TRUE(engine.db().GetRelation("EMPLOYEE").ok());
  EXPECT_EQ((*engine.db().GetRelation("EMPLOYEE"))->size(), 3 + kInserts);
}

TEST(EngineConcurrencyTest, ConcurrentRetrievesShareTheCache) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    insert into PROJECT values (bq-45, Acme, 300000)
    insert into PROJECT values (sv-72, Apex, 450000)
    view PS (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= 200000
    permit PS to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  engine.ResetAuthzStats();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto out = engine.Execute(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) as Brown");
        if (!out.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, kThreads * kPerThread);
  // No mutations ran: at most a handful of concurrent first-misses, and
  // everything after is served from the shared mask cache.
  EXPECT_GE(stats.mask_hits, stats.retrieves - kThreads);
  EXPECT_EQ(stats.invalidations, 0);
}

}  // namespace
}  // namespace viewauth
