// Concurrent multi-session use of one Engine: reader threads retrieving
// as different users while a mutator thread flips grants and an insert
// thread loads rows. Exercises snapshot-isolated retrieves, the
// internally synchronized authorization cache, group-commit reader
// liveness and snapshot refcount hygiene (run under
// -DVIEWAUTH_SANITIZE=thread and address by tools/check.sh).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/durable.h"
#include "engine/engine.h"
#include "test_fs_util.h"

namespace viewauth {
namespace {

TEST(EngineConcurrencyTest, ConcurrentRetrievesMutationsAndInserts) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)
    insert into EMPLOYEE values (Brown, engineer, 32000)
    view NAMES (EMPLOYEE.NAME)
    view ALL_E (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
    permit NAMES to Brown
    permit NAMES to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  engine.ResetAuthzStats();

  constexpr int kRetrievesPerReader = 40;
  constexpr int kMutations = 20;
  constexpr int kInserts = 30;
  std::atomic<int> failures{0};

  auto reader = [&](const std::string& user) {
    for (int i = 0; i < kRetrievesPerReader; ++i) {
      auto out = engine.Execute(
          "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as " + user);
      if (!out.ok()) failures.fetch_add(1);
    }
  };
  // Grants flip while retrieves run; every retrieve must still be served
  // from a mask consistent with SOME serialization of the statements.
  auto mutator = [&] {
    for (int i = 0; i < kMutations; ++i) {
      auto permit = engine.Execute("permit ALL_E to Klein");
      if (!permit.ok()) failures.fetch_add(1);
      auto deny = engine.Execute("deny ALL_E to Klein");
      if (!deny.ok()) failures.fetch_add(1);
    }
  };
  auto inserter = [&] {
    for (int i = 0; i < kInserts; ++i) {
      auto out = engine.Execute("insert into EMPLOYEE values (w" +
                                std::to_string(i) + ", worker, " +
                                std::to_string(20000 + i) + ")");
      if (!out.ok()) failures.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader, "Brown");
  threads.emplace_back(reader, "Klein");
  threads.emplace_back(mutator);
  threads.emplace_back(inserter);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, 2 * kRetrievesPerReader);
  EXPECT_EQ(stats.mask_hits + stats.mask_misses, stats.retrieves);

  // Quiesced state: Klein's grant cycle ended on deny, so Klein is back
  // to NAMES only; the final masks are consistent.
  ASSERT_TRUE(
      engine.Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) as Klein")
          .ok());
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_FALSE(engine.last_result()->full_access);
  EXPECT_FALSE(engine.last_result()->denied);
  // All inserted rows are present.
  ASSERT_TRUE(engine.db().GetRelation("EMPLOYEE").ok());
  EXPECT_EQ((*engine.db().GetRelation("EMPLOYEE"))->size(), 3 + kInserts);
}

TEST(EngineConcurrencyTest, ConcurrentRetrievesShareTheCache) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    insert into PROJECT values (bq-45, Acme, 300000)
    insert into PROJECT values (sv-72, Apex, 450000)
    view PS (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= 200000
    permit PS to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  engine.ResetAuthzStats();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto out = engine.Execute(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) as Brown");
        if (!out.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.retrieves, kThreads * kPerThread);
  // No mutations ran: at most a handful of concurrent first-misses, and
  // everything after is served from the shared mask cache.
  EXPECT_GE(stats.mask_hits, stats.retrieves - kThreads);
  EXPECT_EQ(stats.invalidations, 0);
}

// A retrieve must never block behind a mutation batch parked on a slow
// fsync — readers run against the published snapshot, lock-free — and
// must never see the staged (not-yet-durable) mutation.
TEST(EngineConcurrencyTest, ReadersProgressWhileBatchFsyncBlocks) {
  const std::string path = ::testing::TempDir() + "viewauth_liveness.log";
  std::remove(path.c_str());
  GateFileSystem gate(FileSystem::Default());
  DurableOptions options;
  options.fs = &gate;
  auto durable = DurableEngine::Open(path, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  for (const char* stmt : {"relation T (A int)", "insert into T values (1)",
                           "view VT (T.A)", "permit VT to u"}) {
    ASSERT_TRUE((*durable)->Execute(stmt).ok()) << stmt;
  }

  // Park a mutation batch at its fsync.
  gate.CloseGate();
  std::thread writer([&] {
    EXPECT_TRUE((*durable)->Execute("insert into T values (42)").ok());
  });
  gate.AwaitWaiter();

  // Retrieves complete while the batch is parked, and the staged insert
  // is invisible: only the durable row is delivered.
  for (int i = 0; i < 8; ++i) {
    auto out = (*durable)->Execute("retrieve (T.A) as u");
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_NE(out->find("| 1 |"), std::string::npos);
    EXPECT_EQ(out->find("42"), std::string::npos);
  }

  gate.OpenGate();
  writer.join();
  auto after = (*durable)->Execute("retrieve (T.A) as u");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("| 42 |"), std::string::npos);
  EXPECT_GE((*durable)->stats().commit_batches, 1u);
  std::remove(path.c_str());
}

// Aborted and cancelled retrieves must drop their snapshot pins: after
// everything unwinds, exactly one engine-state version is alive (the
// leak check ASan backs up at the allocation level).
TEST(EngineConcurrencyTest, AbortedAndCancelledRetrievesReleaseSnapshots) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation T (A int key)
    insert into T values (1)
    insert into T values (2)
    insert into T values (3)
    view VT (T.A)
    permit VT to u
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  EXPECT_EQ(engine.snapshots_live(), 1);

  // Deterministic governor abort: a row budget the data plan must blow.
  engine.options().max_rows = 1;
  EXPECT_FALSE(engine.Execute("retrieve (T.A) as u").ok());
  engine.options().max_rows = 0;
  EXPECT_EQ(engine.snapshots_live(), 1);

  // Cooperative cancellation of retrieves mid-flight.
  std::atomic<bool> done{false};
  std::atomic<int> cancelled{0};
  std::thread reader([&] {
    for (int i = 0; i < 2000 && cancelled.load() == 0; ++i) {
      auto out = engine.Execute("retrieve (T.A) as u");
      if (!out.ok() && out.status().IsCancelled()) cancelled.fetch_add(1);
    }
    done.store(true);
  });
  while (!done.load()) {
    engine.CancelActiveRetrieves();
    std::this_thread::yield();
  }
  reader.join();
  EXPECT_GT(cancelled.load(), 0);

  // Everything unwound: one live state, and the engine still works.
  EXPECT_EQ(engine.snapshots_live(), 1);
  ASSERT_TRUE(engine.Execute("insert into T values (4)").ok());
  ASSERT_TRUE(engine.Execute("retrieve (T.A) as u").ok());
  EXPECT_EQ(engine.snapshots_live(), 1);
}

}  // namespace
}  // namespace viewauth
