// Shared fixtures for viewauth tests: the paper's example database
// (Figure 1) with its four views and two users.

#ifndef VIEWAUTH_TESTS_TEST_UTIL_H_
#define VIEWAUTH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "authz/authorizer.h"
#include "calculus/conjunctive_query.h"
#include "common/logging.h"
#include "meta/view_store.h"
#include "parser/parser.h"
#include "storage/relation.h"

namespace viewauth {
namespace testing_util {

#define VIEWAUTH_TEST_OK(expr)                                    \
  do {                                                            \
    auto _st = (expr);                                            \
    VIEWAUTH_CHECK(_st.ok()) << "status not OK: " << _st.ToString(); \
  } while (false)

// Holds the Figure 1 database: EMPLOYEE / PROJECT / ASSIGNMENT with the
// paper's rows, the views SAE, PSA, ELP, EST, and the grants to Brown
// and Klein.
class PaperDatabase {
 public:
  PaperDatabase() { Build(); }

  DatabaseInstance& db() { return db_; }
  ViewCatalog& catalog() { return *catalog_; }
  Authorizer MakeAuthorizer() { return Authorizer(&db_, catalog_.get()); }

  // Parses a retrieve statement against the schema.
  ConjunctiveQuery Query(const std::string& retrieve_text) {
    auto stmt = ParseStatement(retrieve_text);
    VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
    const auto* retrieve = std::get_if<RetrieveStmt>(&stmt.value());
    VIEWAUTH_CHECK(retrieve != nullptr) << "not a retrieve statement";
    auto query = ConjunctiveQuery::FromRetrieve(db_.schema(), *retrieve);
    VIEWAUTH_CHECK(query.ok()) << query.status().ToString();
    return std::move(query).value();
  }

 private:
  void Build() {
    // Schema. NAME / NUMBER / the ASSIGNMENT pair act as keys.
    auto employee = RelationSchema::Make(
        "EMPLOYEE",
        {{"NAME", ValueType::kString},
         {"TITLE", ValueType::kString},
         {"SALARY", ValueType::kInt64}},
        {0});
    auto project = RelationSchema::Make(
        "PROJECT",
        {{"NUMBER", ValueType::kString},
         {"SPONSOR", ValueType::kString},
         {"BUDGET", ValueType::kInt64}},
        {0});
    auto assignment = RelationSchema::Make(
        "ASSIGNMENT",
        {{"E_NAME", ValueType::kString}, {"P_NO", ValueType::kString}},
        {0, 1});
    VIEWAUTH_TEST_OK(employee.status());
    VIEWAUTH_TEST_OK(project.status());
    VIEWAUTH_TEST_OK(assignment.status());
    VIEWAUTH_TEST_OK(db_.CreateRelation(std::move(employee).value()));
    VIEWAUTH_TEST_OK(db_.CreateRelation(std::move(project).value()));
    VIEWAUTH_TEST_OK(db_.CreateRelation(std::move(assignment).value()));

    auto emp = [&](const char* name, const char* title, int64_t salary) {
      VIEWAUTH_TEST_OK(db_.Insert(
          "EMPLOYEE", Tuple({Value::String(name), Value::String(title),
                             Value::Int64(salary)})));
    };
    emp("Jones", "manager", 26000);
    emp("Smith", "technician", 22000);
    emp("Brown", "engineer", 32000);

    auto proj = [&](const char* number, const char* sponsor,
                    int64_t budget) {
      VIEWAUTH_TEST_OK(db_.Insert(
          "PROJECT", Tuple({Value::String(number), Value::String(sponsor),
                            Value::Int64(budget)})));
    };
    proj("bq-45", "Acme", 300000);
    proj("sv-72", "Apex", 450000);
    proj("vg-13", "Summit", 150000);

    auto assign = [&](const char* e, const char* p) {
      VIEWAUTH_TEST_OK(db_.Insert(
          "ASSIGNMENT", Tuple({Value::String(e), Value::String(p)})));
    };
    assign("Jones", "bq-45");
    assign("Smith", "bq-45");
    assign("Jones", "sv-72");
    assign("Brown", "sv-72");
    assign("Smith", "vg-13");
    assign("Brown", "vg-13");

    catalog_ = std::make_unique<ViewCatalog>(&db_.schema());

    DefineView("view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
    DefineView(
        "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
        "PROJECT.BUDGET) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
        "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
        "and PROJECT.BUDGET >= 250000");
    DefineView(
        "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE) "
        "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
    DefineView("view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
               "where PROJECT.SPONSOR = Acme");

    VIEWAUTH_TEST_OK(catalog_->Permit("SAE", "Brown"));
    VIEWAUTH_TEST_OK(catalog_->Permit("PSA", "Brown"));
    VIEWAUTH_TEST_OK(catalog_->Permit("EST", "Brown"));
    VIEWAUTH_TEST_OK(catalog_->Permit("ELP", "Klein"));
    VIEWAUTH_TEST_OK(catalog_->Permit("EST", "Klein"));
  }

  void DefineView(const std::string& text) {
    auto stmt = ParseStatement(text);
    VIEWAUTH_CHECK(stmt.ok()) << stmt.status().ToString();
    const auto* view = std::get_if<ViewStmt>(&stmt.value());
    VIEWAUTH_CHECK(view != nullptr) << "not a view statement";
    VIEWAUTH_TEST_OK(catalog_->DefineView(*view));
  }

  DatabaseInstance db_;
  std::unique_ptr<ViewCatalog> catalog_;
};

}  // namespace testing_util
}  // namespace viewauth

#endif  // VIEWAUTH_TESTS_TEST_UTIL_H_
