// Unit tests for the typed value system.

#include "types/value.h"

#include <gtest/gtest.h>

namespace viewauth {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(Value, TypedConstruction) {
  EXPECT_TRUE(Value::Int64(5).is_int64());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_EQ(Value::Int64(5).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
}

TEST(Value, CrossNumericComparison) {
  EXPECT_EQ(Value::Int64(5).Compare(Value::Double(5.0)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Double(5.5)), -1);
  EXPECT_EQ(Value::Double(6.0).Compare(Value::Int64(5)), 1);
}

TEST(Value, StringComparison) {
  EXPECT_EQ(Value::String("Acme").Compare(Value::String("Apex")), -1);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a")), 0);
}

TEST(Value, IncomparablePairs) {
  EXPECT_FALSE(Value::String("5").Compare(Value::Int64(5)).has_value());
  EXPECT_FALSE(Value::Null().Compare(Value::Int64(5)).has_value());
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, NullNeverSatisfiesPredicates) {
  for (Comparator op : {Comparator::kEq, Comparator::kNe, Comparator::kLt,
                        Comparator::kLe, Comparator::kGt, Comparator::kGe}) {
    EXPECT_FALSE(Value::Null().Satisfies(op, Value::Null()));
    EXPECT_FALSE(Value::Null().Satisfies(op, Value::Int64(1)));
    EXPECT_FALSE(Value::Int64(1).Satisfies(op, Value::Null()));
  }
}

TEST(Value, StrictEqualityTreatsNullsEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_NE(Value::Int64(5), Value::Double(5.0));  // different type
}

TEST(Value, TotalOrderForContainers) {
  EXPECT_TRUE(Value::Null() < Value::Int64(-100));
  EXPECT_TRUE(Value::Int64(3) < Value::String(""));
  EXPECT_TRUE(Value::Int64(3) < Value::Int64(4));
  EXPECT_TRUE(Value::Int64(3) < Value::Double(3.0));  // tie: int first
  EXPECT_FALSE(Value::Double(3.0) < Value::Int64(3));
}

TEST(Value, HashConsistentWithCrossNumericEquality) {
  // Int64(5) and Double(5.0) compare equal under Satisfies(kEq), so
  // their hashes agree where exactly representable.
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value::Int64(250000).ToDisplayString(true), "250,000");
  EXPECT_EQ(Value::Int64(-1234567).ToDisplayString(true), "-1,234,567");
  EXPECT_EQ(Value::Int64(250000).ToDisplayString(false), "250000");
  EXPECT_EQ(Value::String("Acme").ToDisplayString(false), "Acme");
  EXPECT_EQ(Value::String("two words").ToDisplayString(false),
            "'two words'");
  EXPECT_EQ(Value::String("bq-45").ToDisplayString(false), "bq-45");
}

TEST(Value, ParseValueAs) {
  auto i = ParseValueAs("42", ValueType::kInt64);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, Value::Int64(42));
  auto d = ParseValueAs("2.5", ValueType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, Value::Double(2.5));
  auto whole = ParseValueAs("3", ValueType::kDouble);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, Value::Double(3.0));
  auto s = ParseValueAs("hello", ValueType::kString);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, Value::String("hello"));
  EXPECT_FALSE(ParseValueAs("abc", ValueType::kInt64).ok());
  EXPECT_FALSE(ParseValueAs("1.5x", ValueType::kDouble).ok());
}

TEST(Comparator, StringRoundTrip) {
  for (Comparator op : {Comparator::kEq, Comparator::kNe, Comparator::kLt,
                        Comparator::kLe, Comparator::kGt, Comparator::kGe}) {
    auto parsed = ComparatorFromString(ComparatorToString(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
  auto alt = ComparatorFromString("<>");
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(*alt, Comparator::kNe);
  EXPECT_FALSE(ComparatorFromString("~").ok());
}

// Parameterized semantics check: ReverseComparator and NegateComparator
// behave as advertised on every ordered pair.
struct ComparatorCase {
  int64_t a;
  int64_t b;
};

class ComparatorLawsTest : public ::testing::TestWithParam<ComparatorCase> {};

TEST_P(ComparatorLawsTest, ReverseAndNegateLaws) {
  const auto& param = GetParam();
  Value a = Value::Int64(param.a);
  Value b = Value::Int64(param.b);
  for (Comparator op : {Comparator::kEq, Comparator::kNe, Comparator::kLt,
                        Comparator::kLe, Comparator::kGt, Comparator::kGe}) {
    EXPECT_EQ(a.Satisfies(op, b), b.Satisfies(ReverseComparator(op), a))
        << ComparatorToString(op) << " on " << param.a << "," << param.b;
    EXPECT_EQ(a.Satisfies(op, b), !a.Satisfies(NegateComparator(op), b))
        << ComparatorToString(op) << " on " << param.a << "," << param.b;
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, ComparatorLawsTest,
                         ::testing::Values(ComparatorCase{1, 2},
                                           ComparatorCase{2, 1},
                                           ComparatorCase{3, 3},
                                           ComparatorCase{-5, 5},
                                           ComparatorCase{0, 0}));

}  // namespace
}  // namespace viewauth
