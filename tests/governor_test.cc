// End-to-end tests for query resource governance: deadlines, row/byte
// budgets and cooperative cancellation threaded through all three data
// plans and the meta plan, admission control with graceful shedding, and
// the abort-cleanliness invariants (an aborted retrieve leaves no trace
// in the authorization cache and never degrades a durable engine).
//
// The adversarial workload is a genuine cross product: for N rows per
// side, A.X covers [0, N) and B.Y covers [N-10, N+N-10), joined on
// A.X > B.Y. No equality column exists, so every data plan must examine
// the full N^2-pair product, while the exact answer is always the 45
// pairs with X in (N-10, N) and Y < X.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/durable.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRowsPerSide = 1000;
constexpr size_t kExpectedPairs = 45;
constexpr const char* kCrossQuery =
    "retrieve (A.X, B.Y) where A.X > B.Y as Brown";

// Builds the cross-product workload on `engine`: relations A and B,
// `rows` tuples each, and an unconditional two-relation view permitted
// to Brown so the mask grants the whole answer.
std::string CrossProductScript(int rows) {
  std::string script =
      "relation A (AK string key, X int)\n"
      "relation B (BK string key, Y int)\n";
  for (int i = 0; i < rows; ++i) {
    script += "insert into A values (a" + std::to_string(i) + ", " +
              std::to_string(i) + ")\n";
    script += "insert into B values (b" + std::to_string(i) + ", " +
              std::to_string(rows - 10 + i) + ")\n";
  }
  script +=
      "view AB (A.X, B.Y)\n"
      "permit AB to Brown\n";
  return script;
}

void LoadCrossProduct(Engine* engine, int rows = kRowsPerSide) {
  auto setup = engine->ExecuteScript(CrossProductScript(rows));
  ASSERT_TRUE(setup.ok()) << setup.status();
  engine->ResetAuthzStats();
}

struct PlanConfig {
  const char* name;
  bool optimized;
  bool latemat;
  bool vectorized;
};

constexpr PlanConfig kPlans[] = {
    {"canonical", false, false, false},
    {"optimized", true, false, false},
    {"latemat", true, true, false},
    {"vectorized", true, true, true},
};

// A 1 ms deadline against the 10^6-pair product must abort well under a
// second on every data plan, and an immediate unlimited rerun must
// return the exact 45-row answer.
TEST(GovernorTest, DeadlineAbortsCrossProductOnAllPlans) {
  for (const PlanConfig& plan : kPlans) {
    SCOPED_TRACE(plan.name);
    Engine engine;
    LoadCrossProduct(&engine);
    engine.options().use_optimized_data_plan = plan.optimized;
    engine.options().use_latemat_data_plan = plan.latemat;
    engine.options().use_vectorized_data_plan = plan.vectorized;

    engine.options().deadline_ms = 1;
    const Clock::time_point start = Clock::now();
    auto governed = engine.Execute(kCrossQuery);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - start);
    ASSERT_FALSE(governed.ok()) << plan.name << " ignored the deadline";
    EXPECT_TRUE(governed.status().IsDeadlineExceeded()) << governed.status();
    EXPECT_LT(elapsed.count(), 1000)
        << plan.name << " took " << elapsed.count() << " ms to abort";

    engine.options().deadline_ms = 0;
    auto unlimited = engine.Execute(kCrossQuery);
    ASSERT_TRUE(unlimited.ok()) << unlimited.status();
    ASSERT_NE(engine.last_result(), nullptr);
    EXPECT_EQ(engine.last_result()->answer.size(), kExpectedPairs);

    const AuthzStats stats = engine.authz_stats();
    EXPECT_EQ(stats.deadline_exceeded, 1);
    EXPECT_EQ(stats.retrieves, 1);  // only the successful run is counted
    EXPECT_GE(stats.governor_checks, 1);
  }
}

TEST(GovernorTest, RowBudgetAborts) {
  Engine engine;
  LoadCrossProduct(&engine);
  engine.options().max_rows = 1000;

  auto out = engine.Execute(kCrossQuery);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted()) << out.status();
  EXPECT_EQ(engine.authz_stats().budget_exceeded, 1);

  engine.options().max_rows = 0;
  auto unlimited = engine.Execute(kCrossQuery);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status();
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_EQ(engine.last_result()->answer.size(), kExpectedPairs);
}

TEST(GovernorTest, ByteBudgetAborts) {
  Engine engine;
  LoadCrossProduct(&engine);
  engine.options().max_bytes = 4096;

  auto out = engine.Execute(kCrossQuery);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted()) << out.status();
  EXPECT_EQ(engine.authz_stats().budget_exceeded, 1);
}

// Generous limits must not change the answer: a budgeted run that fits
// within its budgets matches the unlimited run bit for bit.
TEST(GovernorTest, BudgetedRunMatchesUnlimited) {
  Engine unlimited_engine;
  LoadCrossProduct(&unlimited_engine, 200);
  auto unlimited = unlimited_engine.Execute(kCrossQuery);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status();

  Engine governed_engine;
  LoadCrossProduct(&governed_engine, 200);
  governed_engine.options().deadline_ms = 60000;
  governed_engine.options().max_rows = 10000000;
  governed_engine.options().max_bytes = 1LL << 32;
  auto governed = governed_engine.Execute(kCrossQuery);
  ASSERT_TRUE(governed.ok()) << governed.status();

  EXPECT_EQ(*unlimited, *governed);
  ASSERT_NE(governed_engine.last_result(), nullptr);
  EXPECT_EQ(governed_engine.last_result()->answer.size(), kExpectedPairs);
  const AuthzStats stats = governed_engine.authz_stats();
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.budget_exceeded, 0);
  EXPECT_EQ(stats.retrieves, 1);
}

// The abort-cleanliness invariant: after a governed abort, every cache
// counter (and the cache contents, observed through hit/miss behaviour)
// is identical to an engine where the retrieve never ran. The governor's
// own abort tally is the sole trace.
TEST(GovernorTest, AbortedRetrieveLeavesNoTraceInCache) {
  Engine control;
  LoadCrossProduct(&control, 300);
  Engine subject;
  LoadCrossProduct(&subject, 300);

  subject.options().max_rows = 500;
  auto aborted = subject.Execute(kCrossQuery);
  ASSERT_FALSE(aborted.ok());
  ASSERT_TRUE(aborted.status().IsResourceExhausted()) << aborted.status();
  subject.options().max_rows = 0;

  {
    const AuthzStats s = subject.authz_stats();
    const AuthzStats c = control.authz_stats();
    EXPECT_EQ(s.retrieves, c.retrieves);
    EXPECT_EQ(s.prepared_hits, c.prepared_hits);
    EXPECT_EQ(s.prepared_misses, c.prepared_misses);
    EXPECT_EQ(s.mask_hits, c.mask_hits);
    EXPECT_EQ(s.mask_misses, c.mask_misses);
    EXPECT_EQ(s.mask_compiles, c.mask_compiles);
    EXPECT_EQ(s.invalidations, c.invalidations);
    EXPECT_EQ(s.meta_tuples_pruned, c.meta_tuples_pruned);
    EXPECT_EQ(s.budget_exceeded, 1);  // the abort itself is recorded
  }

  // Both engines now run the retrieve unmodified. If the abort had
  // leaked a partial mask or prepared relation into the subject's cache,
  // its hit/miss counters would diverge from the control's here.
  auto subject_out = subject.Execute(kCrossQuery);
  auto control_out = control.Execute(kCrossQuery);
  ASSERT_TRUE(subject_out.ok()) << subject_out.status();
  ASSERT_TRUE(control_out.ok()) << control_out.status();
  EXPECT_EQ(*subject_out, *control_out);
  {
    const AuthzStats s = subject.authz_stats();
    const AuthzStats c = control.authz_stats();
    EXPECT_EQ(s.retrieves, c.retrieves);
    EXPECT_EQ(s.prepared_hits, c.prepared_hits);
    EXPECT_EQ(s.prepared_misses, c.prepared_misses);
    EXPECT_EQ(s.mask_hits, c.mask_hits);
    EXPECT_EQ(s.mask_misses, c.mask_misses);
    EXPECT_EQ(s.mask_compiles, c.mask_compiles);
  }
}

// Cooperative cancellation: a retrieve grinding through the product is
// cancelled from another thread and aborts with Status::Cancelled.
TEST(GovernorTest, CancelActiveRetrievesAbortsInFlightQuery) {
  Engine engine;
  LoadCrossProduct(&engine);

  std::atomic<bool> done{false};
  Status observed = Status::OK();
  std::thread runner([&] {
    auto out = engine.Execute(kCrossQuery);
    observed = out.ok() ? Status::OK() : out.status();
    done = true;
  });

  int signalled = 0;
  while (!done.load()) {
    signalled = engine.CancelActiveRetrieves();
    if (signalled > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.join();

  if (signalled > 0) {
    EXPECT_TRUE(observed.IsCancelled()) << observed;
    EXPECT_EQ(engine.authz_stats().cancelled, 1);
  } else {
    // The retrieve finished before we could reach it; nothing to assert
    // beyond the run not having crashed. (Does not happen in practice:
    // the 10^6-pair product takes far longer than one poll interval.)
    EXPECT_TRUE(observed.ok()) << observed;
  }
}

// At 4x admission capacity, excess retrieves shed with Unavailable and
// the admission counters reconcile exactly:
//   attempts == admitted + shed + queue_timeouts.
TEST(GovernorTest, AdmissionShedsAtOverload) {
  Engine engine;
  LoadCrossProduct(&engine, 600);
  engine.options().max_concurrent = 2;
  engine.options().admission_queue = 2;
  engine.options().admission_timeout_ms = 20;

  constexpr int kClients = 8;  // 4x the admission capacity
  std::atomic<int> ok_count{0};
  std::atomic<int> unavailable{0};
  std::atomic<int> other_failures{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto out = engine.Execute(kCrossQuery);
      if (out.ok()) {
        ok_count.fetch_add(1);
      } else if (out.status().IsUnavailable()) {
        unavailable.fetch_add(1);
      } else {
        other_failures.fetch_add(1);
      }
    });
  }
  while (ready.load() < kClients) std::this_thread::yield();
  go = true;
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(other_failures.load(), 0);
  EXPECT_EQ(ok_count.load() + unavailable.load(), kClients);

  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.admission_attempts, kClients);
  EXPECT_EQ(stats.admitted + stats.shed + stats.queue_timeouts, kClients);
  EXPECT_EQ(stats.admitted, ok_count.load());
  EXPECT_EQ(stats.shed + stats.queue_timeouts, unavailable.load());
  // With 8 simultaneous arrivals, 2 slots and a 2-deep queue, at least
  // one client must have been turned away.
  EXPECT_GE(unavailable.load(), 1);
}

// A governed abort is a clean non-mutation for the durable engine: the
// log is untouched, the engine does not degrade, and both mutations and
// unlimited retrieves keep working afterwards.
TEST(GovernorTest, GovernedAbortNeverDegradesDurableEngine) {
  const std::string path =
      ::testing::TempDir() + "viewauth_governor_" +
      std::to_string(Clock::now().time_since_epoch().count()) + ".log";
  std::remove(path.c_str());

  auto opened = DurableEngine::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableEngine& durable = **opened;
  auto setup = durable.ExecuteScript(CrossProductScript(300));
  ASSERT_TRUE(setup.ok()) << setup.status();

  durable.engine().options().max_rows = 500;
  auto aborted = durable.Execute(kCrossQuery);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsResourceExhausted()) << aborted.status();
  EXPECT_FALSE(durable.degraded()) << durable.degraded_reason();

  // The engine still accepts mutations (appended to the log) and serves
  // the full answer once the budget is lifted.
  auto insert = durable.Execute("insert into A values (extra, 5000)");
  ASSERT_TRUE(insert.ok()) << insert.status();
  durable.engine().options().max_rows = 0;
  auto unlimited = durable.Execute(kCrossQuery);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status();
  ASSERT_NE(durable.engine().last_result(), nullptr);
  // The extra row (X = 5000) beats all 300 B.Y values, adding 300 pairs
  // to the standard 45.
  EXPECT_EQ(durable.engine().last_result()->answer.size(), kExpectedPairs + 300);

  std::remove(path.c_str());
}

// Stress: concurrent governed retrieves racing against cancellations
// under a tight deadline and bounded admission. Everything must finish,
// every failure must be a governed abort or an admission rejection, and
// the admission books must reconcile. Run under TSan/ASan by
// tools/check.sh. Limits are set once before the threads start —
// AuthorizationOptions itself is not synchronized.
TEST(GovernorTest, ConcurrentGovernedRetrievesStress) {
  Engine engine;
  LoadCrossProduct(&engine, 300);
  engine.options().max_concurrent = 3;
  engine.options().admission_queue = 4;
  engine.options().admission_timeout_ms = 200;
  engine.options().deadline_ms = 3;
  engine.options().max_rows = 60000;

  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto out = engine.Execute(kCrossQuery);
        if (!out.ok() && !out.status().IsGovernedAbort() &&
            !out.status().IsUnavailable()) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  std::thread canceller([&] {
    for (int i = 0; i < 20; ++i) {
      engine.CancelActiveRetrieves();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : threads) t.join();
  canceller.join();

  EXPECT_EQ(unexpected.load(), 0);
  const AuthzStats stats = engine.authz_stats();
  EXPECT_EQ(stats.admission_attempts,
            stats.admitted + stats.shed + stats.queue_timeouts);
  // A quiesced, unlimited retrieve still returns the exact answer.
  engine.options().max_concurrent = 0;
  engine.options().deadline_ms = 0;
  engine.options().max_rows = 0;
  auto out = engine.Execute(kCrossQuery);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_EQ(engine.last_result()->answer.size(), kExpectedPairs);
}

}  // namespace
}  // namespace viewauth
