// Tests for the disclosure auditor (src/analysis/disclosure_auditor.h):
// closure construction, the three diagnostic families (inference
// channels, deny bypass, journal-differential drift), the enumeration
// cutoffs, and the engine/parser/tool exposures (`analyze audit`,
// options().audit_grants, AnalysisReport::ToJson ordering).

#include "analysis/disclosure_auditor.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

int CountCheck(const AnalysisReport& report, std::string_view check) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check) ++n;
  }
  return n;
}

const Diagnostic* FindCheck(const AnalysisReport& report,
                            std::string_view check) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check) return &d;
  }
  return nullptr;
}

// Two innocuous-looking projections of a keyed relation; their join
// reconstructs the full row.
constexpr char kTwoViewChannel[] = R"(
  relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
  view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
  view NT (EMPLOYEE.NAME, EMPLOYEE.TITLE)
  permit SAE to Brown
  permit NT to Brown
)";

TEST(DisclosureAuditorTest, TwoViewJoinChannelReported) {
  Engine engine;
  auto setup = engine.ExecuteScript(kTwoViewChannel);
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AuditCatalog();
  ASSERT_EQ(CountCheck(report, "inference-channel"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "inference-channel");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->user, "Brown");
  EXPECT_EQ(d->view, "NT+SAE");
  EXPECT_NE(d->message.find("EMPLOYEE(NAME, TITLE, SALARY)"),
            std::string::npos)
      << d->message;
}

TEST(DisclosureAuditorTest, ThreeViewChainedChannelReported) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation STAFF (ID int key, GRADE string, PAY int, UNIT string)
    view SG (STAFF.ID, STAFF.GRADE)
    view SP (STAFF.ID, STAFF.PAY)
    view SU (STAFF.ID, STAFF.UNIT)
    permit SG to Klein
    permit SP to Klein
    permit SU to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AuditCatalog();
  // Three pairwise channels plus the depth-3 full-row channel.
  EXPECT_EQ(CountCheck(report, "inference-channel"), 4) << report.ToString();
  bool found_full = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == "inference-channel" &&
        d.message.find("STAFF(ID, GRADE, PAY, UNIT)") != std::string::npos) {
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full) << report.ToString();
}

TEST(DisclosureAuditorTest, NoChannelWithoutTheFullKeyOnBothSides) {
  Engine engine;
  // DOUBLE has a composite key; the two views share only half of it, so
  // joining them does not tuple-identify rows and the auditor must stay
  // silent.
  auto setup = engine.ExecuteScript(R"(
    relation DOUBLE (A string key, B string key, X int, Y int)
    view DX (DOUBLE.A, DOUBLE.X)
    view DY (DOUBLE.A, DOUBLE.Y)
    permit DX to Brown
    permit DY to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AuditCatalog();
  EXPECT_FALSE(report.HasFindings()) << report.ToString();
}

TEST(DisclosureAuditorTest, DisjointRegionsDoNotCompose) {
  Engine engine;
  // Same columns recombined, but the two views cover provably disjoint
  // salary ranges: the join is empty, so nothing new is disclosed.
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view LOWT (EMPLOYEE.NAME, EMPLOYEE.TITLE) where EMPLOYEE.SALARY < 20000
    view HIGHS (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 30000
    permit LOWT to Brown
    permit HIGHS to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AuditCatalog();
  EXPECT_EQ(CountCheck(report, "inference-channel"), 0) << report.ToString();
}

TEST(DisclosureAuditorTest, PaperCatalogIsAuditClean) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    relation ASSIGNMENT (E_NAME string key, P_NO string key)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.SPONSOR = Acme
    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
      where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
      and PROJECT.NUMBER = ASSIGNMENT.P_NO
      and PROJECT.BUDGET >= 250000
    view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
      where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE
    permit SAE to Brown
    permit PSA to Brown
    permit EST to Brown
    permit ELP to Klein
    permit EST to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // EST and ELP are multi-atom views: their per-atom regions drop
  // cross-atom constraints, so the auditor refuses to compose them
  // (soundness over completeness) and the paper catalog stays clean.
  AnalysisReport report = engine.AuditCatalog();
  EXPECT_FALSE(report.HasFindings()) << report.ToString();
}

TEST(DisclosureAuditorTest, DenyBypassMissedByPairwiseCheckReported) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view NT (EMPLOYEE.NAME, EMPLOYEE.TITLE)
    view FULL (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
    permit SAE to Brown
    permit NT to Brown
    permit FULL to Brown
    deny FULL to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // The pairwise shadowed-deny check passes: no surviving grant
  // re-permits FULL and no single view implies it.
  AnalysisReport pairwise = engine.AnalyzeCatalog();
  EXPECT_EQ(CountCheck(pairwise, "shadowed-deny"), 0)
      << pairwise.ToString();

  AnalysisReport audit = engine.AuditCatalog();
  ASSERT_EQ(CountCheck(audit, "deny-bypass"), 1) << audit.ToString();
  const Diagnostic* d = FindCheck(audit, "deny-bypass");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location, "deny FULL to Brown");
  EXPECT_EQ(d->user, "Brown");
}

TEST(DisclosureAuditorTest, DenyCoveredByPairwiseCheckNotDoubleReported) {
  Engine engine;
  // WIDE implies NARROW, so the deny of NARROW is a pairwise
  // shadowed-deny; the auditor must not also report it as a bypass.
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 20000
    view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    permit WIDE to Brown
    permit NARROW to Brown
    deny NARROW to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport pairwise = engine.AnalyzeCatalog();
  EXPECT_EQ(CountCheck(pairwise, "shadowed-deny"), 1)
      << pairwise.ToString();
  AnalysisReport audit = engine.AuditCatalog();
  EXPECT_EQ(CountCheck(audit, "deny-bypass"), 0) << audit.ToString();
}

TEST(DisclosureAuditorTest, DriftDifferentialAcrossCatalogVersions) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view NT (EMPLOYEE.NAME, EMPLOYEE.TITLE)
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // Three catalog versions: v0 (no grants), v1 (SAE), v2 (SAE + NT).
  const long long v0 = engine.catalog().catalog_version();
  ASSERT_TRUE(engine.Execute("permit SAE to Brown").ok());
  const long long v1 = engine.catalog().catalog_version();
  ASSERT_TRUE(engine.Execute("permit NT to Brown").ok());

  DisclosureAuditOptions since_v0;
  since_v0.drift_since_seq = v0;
  AnalysisReport full = engine.AuditCatalog(since_v0);
  // Both permits report marginal facts; the NT permit also contributes
  // the composed full-row fact.
  EXPECT_GE(CountCheck(full, "disclosure-drift"), 3) << full.ToString();
  bool nt_composition = false;
  for (const Diagnostic& d : full.diagnostics()) {
    if (d.check == "disclosure-drift" && d.view == "NT" &&
        d.message.find("NT+SAE") != std::string::npos) {
      nt_composition = true;
    }
  }
  EXPECT_TRUE(nt_composition) << full.ToString();

  DisclosureAuditOptions since_v1;
  since_v1.drift_since_seq = v1;
  AnalysisReport tail = engine.AuditCatalog(since_v1);
  // Only the NT grant lies after v1.
  for (const Diagnostic& d : tail.diagnostics()) {
    if (d.check == "disclosure-drift") {
      EXPECT_EQ(d.view, "NT") << d.message;
    }
  }
  EXPECT_GE(CountCheck(tail, "disclosure-drift"), 1) << tail.ToString();
  EXPECT_LT(CountCheck(tail, "disclosure-drift"),
            CountCheck(full, "disclosure-drift"));

  // Drift findings are notes: they never make the audit fail.
  EXPECT_EQ(full.errors(), CountCheck(full, "inference-channel"));
}

TEST(DisclosureAuditorTest, HundredViewCatalogCompletesUnderCutoffs) {
  Engine engine;
  std::string script = "relation WIDE (K int key";
  for (int i = 1; i <= 100; ++i) {
    script += ", C" + std::to_string(i) + " int";
  }
  script += ")\n";
  for (int i = 1; i <= 100; ++i) {
    script += "view V" + std::to_string(i) + " (WIDE.K, WIDE.C" +
              std::to_string(i) + ")\n";
    script += "permit V" + std::to_string(i) + " to Scale\n";
  }
  auto setup = engine.ExecuteScript(script);
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AuditCatalog();
  // The composition lattice is far larger than the cutoffs; the audit
  // must truncate (one note) rather than enumerate it, and still report
  // the channels it did reach.
  EXPECT_EQ(CountCheck(report, "audit-cutoff"), 1) << report.SummaryLine();
  EXPECT_GT(CountCheck(report, "inference-channel"), 0);
}

TEST(DisclosureAuditorTest, AnalyzeAuditStatementParses) {
  auto stmt = ParseStatement("analyze audit");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_TRUE(std::holds_alternative<AnalyzeStmt>(*stmt));
  EXPECT_TRUE(std::get<AnalyzeStmt>(*stmt).audit);
  EXPECT_EQ(StatementToString(*stmt), "analyze audit");

  auto plain = ParseStatement("analyze");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(std::get<AnalyzeStmt>(*plain).audit);

  Engine engine;
  auto setup = engine.ExecuteScript(kTwoViewChannel);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto out = engine.Execute("analyze audit");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("inference-channel"), std::string::npos) << *out;
  auto without = engine.Execute("analyze");
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->find("inference-channel"), std::string::npos)
      << *without;
}

TEST(DisclosureAuditorTest, AuditGrantsFiresOnPermitAndDeny) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view NT (EMPLOYEE.NAME, EMPLOYEE.TITLE)
    view FULL (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
    permit SAE to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // Off by default: no inline audit notes.
  auto quiet = engine.Execute("permit NT to Brown");
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->find("discloses"), std::string::npos) << *quiet;
  ASSERT_TRUE(engine.Execute("deny NT to Brown").ok());

  engine.options().audit_grants = true;
  // Permit-time: the grant's marginal disclosure and the channel it
  // opens (NT joins SAE on the EMPLOYEE key) are reported inline.
  auto warned = engine.Execute("permit NT to Brown");
  ASSERT_TRUE(warned.ok());
  EXPECT_NE(warned->find("discloses"), std::string::npos) << *warned;
  EXPECT_NE(warned->find("inference-channel"), std::string::npos) << *warned;

  // Deny-time: denying FULL while SAE+NT survive is vacuous, and the
  // audit path says so at entry.
  ASSERT_TRUE(engine.Execute("permit FULL to Brown").ok());
  auto denied = engine.Execute("deny FULL to Brown");
  ASSERT_TRUE(denied.ok());
  EXPECT_NE(denied->find("deny-bypass"), std::string::npos) << *denied;
}

TEST(DisclosureAuditorTest, ToJsonOrderingIsDeterministic) {
  AnalysisReport report;
  Diagnostic channel;
  channel.severity = Severity::kError;
  channel.check = "inference-channel";
  channel.view = "NT+SAE";
  channel.user = "Brown";
  channel.location = "user Brown";
  channel.message = "line1\nline2 \"quoted\"";
  Diagnostic bypass;
  bypass.severity = Severity::kError;
  bypass.check = "deny-bypass";
  bypass.view = "FULL";
  bypass.user = "Brown";
  bypass.location = "deny FULL to Brown";
  bypass.message = "vacuous";
  // Insertion order is channel-first; output order must be check-sorted
  // (deny-bypass < inference-channel) and escape the message.
  report.Add(channel);
  report.Add(bypass);
  const std::string json = report.ToJson();
  const size_t bypass_at = json.find("deny-bypass");
  const size_t channel_at = json.find("inference-channel");
  ASSERT_NE(bypass_at, std::string::npos) << json;
  ASSERT_NE(channel_at, std::string::npos) << json;
  EXPECT_LT(bypass_at, channel_at) << json;
  EXPECT_NE(json.find("line1\\nline2 \\\"quoted\\\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"errors\": 2"), std::string::npos) << json;
}

TEST(DisclosureAuditorTest, ClosureForExposesBaseAndComposedFacts) {
  Engine engine;
  auto setup = engine.ExecuteScript(kTwoViewChannel);
  ASSERT_TRUE(setup.ok()) << setup.status();

  // Read the catalog through the engine's audit surface first (shared
  // lock), then inspect the closure directly.
  DisclosureAuditor auditor(&engine.catalog());
  UserClosure closure = auditor.ClosureFor("Brown");
  EXPECT_EQ(closure.base_count, 2);
  ASSERT_EQ(closure.facts.size(), 3u);
  EXPECT_FALSE(closure.truncated);
  const DisclosureFact& composed = closure.facts.back();
  EXPECT_EQ(composed.depth(), 2);
  EXPECT_EQ(composed.SourceLabel(), "NT+SAE");
  EXPECT_EQ(composed.columns.size(), 3u);
  EXPECT_EQ(RenderFact(engine.catalog(), composed),
            "EMPLOYEE(NAME, TITLE, SALARY)");
}

}  // namespace
}  // namespace viewauth
