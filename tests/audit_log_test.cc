// Tests for the audit log: every user-attributed decision is recorded
// with its outcome, counts, and inferred permits.

#include "authz/audit_log.h"

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace viewauth {
namespace {

class AuditLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
      insert into PROJECT values (p1, Acme, 100000)
      insert into PROJECT values (p2, Apex, 400000)
      view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
        where PROJECT.SPONSOR = Acme
      permit PSA to Brown
      permit PSA to editor for insert
      permit PSA to editor for delete
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Engine engine_;
};

TEST_F(AuditLogTest, RetrieveOutcomesRecorded) {
  ASSERT_TRUE(
      engine_.Execute("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
                      "as Brown")
          .ok());
  ASSERT_TRUE(engine_.Execute("retrieve (PROJECT.NUMBER) as Nobody").ok());
  ASSERT_TRUE(engine_
                  .Execute("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, "
                           "PROJECT.BUDGET) where PROJECT.SPONSOR = Acme "
                           "as Brown")
                  .ok());

  const AuditLog& log = engine_.audit_log();
  ASSERT_EQ(log.size(), 3);
  EXPECT_EQ(log.entries()[0].outcome, AuditOutcome::kPartial);
  EXPECT_EQ(log.entries()[0].user, "Brown");
  EXPECT_EQ(log.entries()[0].affected, 1);
  EXPECT_EQ(log.entries()[0].withheld, 1);  // the Apex row
  EXPECT_NE(log.entries()[0].permits.find("SPONSOR = Acme"),
            std::string::npos);
  EXPECT_EQ(log.entries()[1].outcome, AuditOutcome::kDenied);
  EXPECT_EQ(log.entries()[2].outcome, AuditOutcome::kFullAccess);
  // Sequence numbers are monotonic from 1.
  EXPECT_EQ(log.entries()[0].sequence, 1);
  EXPECT_EQ(log.entries()[2].sequence, 3);
}

TEST_F(AuditLogTest, UpdateOutcomesRecorded) {
  ASSERT_TRUE(engine_
                  .Execute("insert into PROJECT values (p3, Acme, 5) "
                           "as editor")
                  .ok());
  EXPECT_FALSE(engine_
                   .Execute("insert into PROJECT values (p4, Apex, 5) "
                            "as editor")
                   .ok());
  ASSERT_TRUE(engine_
                  .Execute("delete from PROJECT where PROJECT.BUDGET < "
                           "500000 as editor")
                  .ok());

  const AuditLog& log = engine_.audit_log();
  ASSERT_EQ(log.size(), 3);
  EXPECT_EQ(log.entries()[0].outcome, AuditOutcome::kInsertAllowed);
  EXPECT_EQ(log.entries()[1].outcome, AuditOutcome::kInsertDenied);
  EXPECT_EQ(log.entries()[2].outcome, AuditOutcome::kDeleteApplied);
  EXPECT_EQ(log.entries()[2].affected, 2);  // p1 and p3 (Acme rows)
  EXPECT_EQ(log.entries()[2].withheld, 1);  // p2 (Apex)
}

TEST_F(AuditLogTest, AdministrativeStatementsAreNotAudited) {
  ASSERT_TRUE(engine_.Execute("insert into PROJECT values (p9, Zeus, 1)")
                  .ok());
  ASSERT_TRUE(engine_.Execute("delete from PROJECT where "
                              "PROJECT.SPONSOR = Zeus")
                  .ok());
  EXPECT_EQ(engine_.audit_log().size(), 0);
}

TEST_F(AuditLogTest, MaterializeAndRender) {
  ASSERT_TRUE(engine_.Execute("retrieve (PROJECT.NUMBER) as Nobody").ok());
  Relation rel = engine_.audit_log().Materialize();
  EXPECT_EQ(rel.schema().name(), "AUDIT");
  EXPECT_EQ(rel.size(), 1);
  EXPECT_EQ(rel.rows()[0].at(3), Value::String("denied"));

  std::string text = engine_.audit_log().ToString();
  EXPECT_NE(text.find("[Nobody] denied"), std::string::npos);
  // last_n trims from the front.
  ASSERT_TRUE(engine_.Execute("retrieve (PROJECT.NUMBER) as Brown").ok());
  std::string last = engine_.audit_log().ToString(1);
  EXPECT_EQ(last.find("Nobody"), std::string::npos);
  EXPECT_NE(last.find("Brown"), std::string::npos);
}

}  // namespace
}  // namespace viewauth
