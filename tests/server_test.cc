// Unit tests for the wire-protocol server: frame codec, session
// identity policy, per-request deadline propagation, admission-shed
// structured replies, connection caps, graceful drain, and the server
// counters. The fault-injection suite lives in network_torture_test.cc.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "server/client.h"

namespace viewauth {
namespace {

using Clock = std::chrono::steady_clock;

// The governor test's adversarial workload: a genuine N^2 cross product
// (no equality column), permitted whole to Brown, so a retrieve with a
// short deadline reliably trips mid-scan and one without takes real
// wall time.
std::string CrossProductScript(int rows) {
  std::string script =
      "relation A (AK string key, X int)\n"
      "relation B (BK string key, Y int)\n";
  for (int i = 0; i < rows; ++i) {
    script += "insert into A values (a" + std::to_string(i) + ", " +
              std::to_string(i) + ")\n";
    script += "insert into B values (b" + std::to_string(i) + ", " +
              std::to_string(rows - 10 + i) + ")\n";
  }
  script +=
      "view AB (A.X, B.Y)\n"
      "permit AB to Brown\n";
  return script;
}

constexpr const char* kCrossQuery = "retrieve (A.X, B.Y) where A.X > B.Y";

class ServerTest : public ::testing::Test {
 protected:
  void SeedEmployees(Engine* engine) {
    auto setup = engine->ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
      insert into EMPLOYEE values (Jones, manager, 26000)
      insert into EMPLOYEE values (Brown, engineer, 32000)
      view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      permit SAE to Brown
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  void StartServer(Engine* engine, ServerOptions options = {}) {
    server_ = std::make_unique<Server>(engine, options);
    auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok()) << listener.status();
    ASSERT_TRUE(server_->Start(std::move(*listener)).ok());
  }

  Result<std::unique_ptr<Client>> Connect(const std::string& user,
                                          ClientOptions options = {}) {
    return Client::ConnectTcp("127.0.0.1", server_->port(), user, options);
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST(FrameCodecTest, RoundTripThroughSocketPair) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  RequestPayload request;
  request.id = 42;
  request.deadline_ms = 250;
  request.statement = "retrieve (EMPLOYEE.NAME) as Brown";
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(request));
  ASSERT_TRUE(WriteFully(*pair->first, frame, 1000).ok());

  auto read = ReadFrame(*pair->second, kDefaultMaxFrameBytes, 1000, 1000);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->type, FrameType::kRequest);
  auto decoded = DecodeRequest(read->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->deadline_ms, 250u);
  EXPECT_EQ(decoded->statement, request.statement);
}

TEST(FrameCodecTest, CleanCloseAtBoundaryIsNotFound) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  pair->first.reset();  // close without sending anything
  auto read = ReadFrame(*pair->second, kDefaultMaxFrameBytes, 1000, 1000);
  EXPECT_TRUE(read.status().IsNotFound()) << read.status();
}

TEST(FrameCodecTest, MidFrameDisconnectIsProtocolError) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  const std::string frame = EncodeFrame(FrameType::kHello, "brown");
  // Half the frame, then the peer dies.
  ASSERT_TRUE(WriteFully(*pair->first, frame.substr(0, 6), 1000).ok());
  pair->first.reset();
  auto read = ReadFrame(*pair->second, kDefaultMaxFrameBytes, 1000, 1000);
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status();
  EXPECT_NE(read.status().message().find("mid-frame"), std::string::npos);
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforeAllocation) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  std::string header;
  const uint32_t huge = 0xfffffff0u;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  header.append(4, '\0');  // CRC never checked: length fails first
  ASSERT_TRUE(WriteFully(*pair->first, header, 1000).ok());
  auto read = ReadFrame(*pair->second, 1 << 20, 1000, 1000);
  ASSERT_TRUE(read.status().IsInvalidArgument()) << read.status();
  EXPECT_NE(read.status().message().find("exceeds"), std::string::npos);
}

TEST(FrameCodecTest, CorruptBodyFailsCrc) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  std::string frame = EncodeFrame(FrameType::kHello, "brown");
  frame[frame.size() - 1] ^= 0x40;  // flip one payload bit
  ASSERT_TRUE(WriteFully(*pair->first, frame, 1000).ok());
  auto read = ReadFrame(*pair->second, kDefaultMaxFrameBytes, 1000, 1000);
  ASSERT_TRUE(read.status().IsInvalidArgument()) << read.status();
  EXPECT_NE(read.status().message().find("CRC"), std::string::npos);
}

TEST_F(ServerTest, HelloThenRetrieve) {
  SeedEmployees(&engine_);
  StartServer(&engine_);

  auto client = Connect("Brown");
  ASSERT_TRUE(client.ok()) << client.status();
  auto out = (*client)->Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("Jones"), std::string::npos);
  EXPECT_NE(out->find("26,000"), std::string::npos);

  // The session identity decides whose masks apply: TITLE is not
  // covered by Brown's view, so it is withheld.
  auto masked = (*client)->Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)");
  ASSERT_TRUE(masked.ok());
  EXPECT_EQ(masked->find("manager"), std::string::npos);
}

TEST_F(ServerTest, RequestBeforeHelloIsRefused) {
  SeedEmployees(&engine_);
  StartServer(&engine_);

  auto socket = ConnectTcp("127.0.0.1", server_->port(), 1000);
  ASSERT_TRUE(socket.ok());
  RequestPayload request;
  request.id = 1;
  request.statement = "retrieve (EMPLOYEE.NAME)";
  ASSERT_TRUE(WriteFully(*(*socket),
                         EncodeFrame(FrameType::kRequest,
                                     EncodeRequest(request)),
                         1000)
                  .ok());
  auto read = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 2000, 1000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->type, FrameType::kReply);
  auto reply = DecodeReply(read->payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code,
            static_cast<int32_t>(StatusCode::kPermissionDenied));
  EXPECT_NE(reply->text.find("hello"), std::string::npos);
}

TEST_F(ServerTest, IdentityCannotBeEscalated) {
  SeedEmployees(&engine_);
  StartServer(&engine_);

  auto brown = Connect("Brown");
  ASSERT_TRUE(brown.ok()) << brown.status();
  // `as` naming the session user is redundant but fine.
  EXPECT_TRUE(
      (*brown)->Execute("retrieve (EMPLOYEE.NAME) as Brown").ok());
  // Impersonation is refused at the protocol boundary.
  auto as_jones = (*brown)->Execute("retrieve (EMPLOYEE.NAME) as Jones");
  ASSERT_FALSE(as_jones.ok());
  EXPECT_TRUE(as_jones.status().IsPermissionDenied()) << as_jones.status();
  // So are administrative statements from a non-admin session.
  auto ddl = (*brown)->Execute("relation SNEAKY (A int)");
  ASSERT_FALSE(ddl.ok());
  EXPECT_TRUE(ddl.status().IsPermissionDenied());
  EXPECT_FALSE(engine_.db().GetRelation("SNEAKY").ok());

  // An admin session may do both.
  auto admin = Connect("admin");
  ASSERT_TRUE(admin.ok()) << admin.status();
  EXPECT_TRUE((*admin)->Execute("retrieve (EMPLOYEE.NAME) as Brown").ok());
  EXPECT_TRUE((*admin)->Execute("relation AUDITED (A int)").ok());
}

TEST_F(ServerTest, PerRequestDeadlinePropagatesIntoGovernor) {
  ASSERT_TRUE(engine_.ExecuteScript(CrossProductScript(1000)).ok());
  StartServer(&engine_);

  auto client = Connect("Brown");
  ASSERT_TRUE(client.ok()) << client.status();
  // 1ms against a 10^6-pair cross product trips the governor...
  auto governed = (*client)->Execute(kCrossQuery, /*deadline_ms=*/1);
  ASSERT_FALSE(governed.ok());
  EXPECT_TRUE(governed.status().IsDeadlineExceeded()) << governed.status();
  // ...and the connection survives a governed abort: the same query
  // without a deadline completes.
  auto full = (*client)->Execute(kCrossQuery);
  ASSERT_TRUE(full.ok()) << full.status();
}

TEST_F(ServerTest, AdmissionShedIsAStructuredReply) {
  ASSERT_TRUE(engine_.ExecuteScript(CrossProductScript(1000)).ok());
  engine_.options().max_concurrent = 1;
  engine_.options().admission_queue = 0;
  StartServer(&engine_);

  auto slow = Connect("Brown");
  auto fast = Connect("Brown");
  ASSERT_TRUE(slow.ok() && fast.ok());

  // Park a slow retrieve on one connection while probing on the other:
  // with a single admission slot and no queue, whichever side loses the
  // race gets a structured Unavailable reply — never a dropped socket.
  std::thread parked([&] {
    auto out = (*slow)->Execute(kCrossQuery);
    if (!out.ok()) {
      EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
    }
  });
  for (int i = 0; i < 200 && server_->stats().requests_shed == 0; ++i) {
    auto raced = (*fast)->Execute("retrieve (A.X) where A.X = 1");
    if (!raced.ok()) {
      EXPECT_TRUE(raced.status().IsUnavailable()) << raced.status();
    }
  }
  parked.join();
  EXPECT_GE(server_->stats().requests_shed, 1) << "no shed observed";
  // Both connections survived their (possible) sheds.
  EXPECT_TRUE((*slow)->alive());
  EXPECT_TRUE((*fast)->Execute("retrieve (A.X) where A.X = 1").ok());
}

TEST_F(ServerTest, AtCapacityConnectionsAreRejectedStructurally) {
  SeedEmployees(&engine_);
  ServerOptions options;
  options.max_connections = 1;
  StartServer(&engine_, options);

  auto first = Connect("Brown");
  ASSERT_TRUE(first.ok()) << first.status();
  // The second connection is greeted with an error frame, not a slam.
  auto second = Connect("Brown");
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("capacity"), std::string::npos)
      << second.status();
  EXPECT_GE(server_->stats().connections_rejected, 1);
  // The first connection is unaffected.
  EXPECT_TRUE((*first)->Execute("retrieve (EMPLOYEE.NAME)").ok());
}

TEST_F(ServerTest, GracefulDrainFinishesInFlightAndRefusesQueued) {
  ASSERT_TRUE(engine_.ExecuteScript(CrossProductScript(1200)).ok());
  StartServer(&engine_);

  // Pipeline two requests on a raw connection: a slow cross product and
  // a fast probe, then drain while the first is in flight.
  auto socket = ConnectTcp("127.0.0.1", server_->port(), 1000);
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(
      WriteFully(*(*socket), EncodeFrame(FrameType::kHello, "Brown"), 1000)
          .ok());
  auto hello_ack = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 2000, 1000);
  ASSERT_TRUE(hello_ack.ok()) << hello_ack.status();

  RequestPayload slow;
  slow.id = 1;
  slow.statement = std::string(kCrossQuery) + " as Brown";
  RequestPayload fast;
  fast.id = 2;
  fast.statement = "retrieve (A.X) where A.X = 1 as Brown";
  std::string pipelined =
      EncodeFrame(FrameType::kRequest, EncodeRequest(slow)) +
      EncodeFrame(FrameType::kRequest, EncodeRequest(fast));
  ASSERT_TRUE(WriteFully(*(*socket), pipelined, 1000).ok());

  std::thread stopper([&] {
    // Let the slow retrieve start, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_->Stop();
  });

  // The in-flight retrieve completes with its full result.
  auto first = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 60'000, 5000);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->type, FrameType::kReply);
  auto first_reply = DecodeReply(first->payload);
  ASSERT_TRUE(first_reply.ok());
  EXPECT_EQ(first_reply->id, 1u);
  EXPECT_EQ(first_reply->code, 0) << first_reply->text;

  // The queued request gets the structured shutting-down reply.
  auto second = ReadFrame(*(*socket), kDefaultMaxFrameBytes, 10'000, 5000);
  ASSERT_TRUE(second.ok()) << second.status();
  if (second->type == FrameType::kReply) {
    auto second_reply = DecodeReply(second->payload);
    ASSERT_TRUE(second_reply.ok());
    EXPECT_EQ(second_reply->id, 2u);
    EXPECT_EQ(second_reply->code,
              static_cast<int32_t>(StatusCode::kUnavailable));
    EXPECT_NE(second_reply->text.find("shutting down"), std::string::npos);
  } else {
    // The drain flag may have landed between the two reads; then the
    // queued request is answered by the connection-final error frame.
    EXPECT_EQ(second->type, FrameType::kError);
  }
  stopper.join();

  EXPECT_FALSE(server_->running());
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_active, 0);
  EXPECT_GE(stats.drain_rejects + stats.connections_evicted, 1);
  EXPECT_GT(stats.drain_micros, 0);
  // No snapshot leaked: the drained engine is back to a single live
  // state version.
  EXPECT_EQ(engine_.snapshots_live(), 1);

  // New connections are refused outright (the listener is closed).
  auto late = Connect("Brown");
  EXPECT_FALSE(late.ok());

  // The engine itself is released from draining and fully usable.
  EXPECT_TRUE(engine_.Execute("retrieve (A.X) where A.X = 1 as Brown").ok());
}

TEST_F(ServerTest, CountersReconcileAndRenderAndStatsFrameWorks) {
  SeedEmployees(&engine_);
  StartServer(&engine_);

  auto client = Connect("Brown");
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->Execute("retrieve (EMPLOYEE.NAME)").ok());
  auto denied = (*client)->Execute("relation NOPE (A int)");
  EXPECT_TRUE(denied.status().IsPermissionDenied());

  auto report = (*client)->Stats();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("server stats:"), std::string::npos);
  EXPECT_NE(report->find("authorization stats:"), std::string::npos);

  (*client)->Goodbye();
  // Give the goodbye a moment to land so counters settle.
  for (int i = 0; i < 100 && server_->stats().connections_active > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.connections_active, 0);
  EXPECT_GE(stats.frames_in, 4);  // hello + 2 requests + stats + goodbye
  EXPECT_GE(stats.frames_out, 4);
  EXPECT_EQ(stats.requests_ok, 1);
  EXPECT_EQ(stats.requests_error, 1);
  EXPECT_EQ(stats.requests_in_flight, 0);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("connections:"), std::string::npos);
  EXPECT_NE(rendered.find("requests:"), std::string::npos);
  EXPECT_NE(rendered.find("drain:"), std::string::npos);
}

TEST_F(ServerTest, ReplyLargerThanFrameCapIsAStructuredError) {
  std::string script =
      "relation EMPLOYEE (NAME string key, SALARY int)\n";
  for (int i = 0; i < 300; ++i) {
    script += "insert into EMPLOYEE values (employee_number_" +
              std::to_string(i) + ", " + std::to_string(20000 + i) + ")\n";
  }
  script +=
      "view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)\n"
      "permit SAE to Brown\n";
  ASSERT_TRUE(engine_.ExecuteScript(script).ok());
  ServerOptions options;
  options.max_frame_bytes = 1024;  // far below the 300-row rendering
  StartServer(&engine_, options);

  auto client = Connect("Brown");
  ASSERT_TRUE(client.ok()) << client.status();
  auto out = (*client)->Execute("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted()) << out.status();
  EXPECT_NE(out.status().message().find("frame cap"), std::string::npos);
  // The connection survives; a small reply still fits.
  EXPECT_TRUE(
      (*client)
          ->Execute(
              "retrieve (EMPLOYEE.SALARY) where EMPLOYEE.SALARY = 20000")
          .ok());
}

TEST_F(ServerTest, DurableBackendServesAndCommits) {
  const std::string path = ::testing::TempDir() + "viewauth_server_test.log";
  std::remove(path.c_str());
  auto durable = DurableEngine::Open(path);
  ASSERT_TRUE(durable.ok()) << durable.status();
  Server server(durable->get());
  auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(server.Start(std::move(*listener)).ok());

  auto admin = Client::ConnectTcp("127.0.0.1", server.port(), "admin");
  ASSERT_TRUE(admin.ok()) << admin.status();
  ASSERT_TRUE((*admin)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*admin)->Execute("insert into T values (7)").ok());
  server.Stop();
  durable->reset();

  // The acked mutations are durable: a strict reopen replays them.
  auto reopened = DurableEngine::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 1);
  std::remove(path.c_str());
}

TEST(RetryingClientTest, RetriesShedsAndReconnects) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"(
    relation T (A int key)
    insert into T values (1)
    view VT (T.A)
    permit VT to Brown
  )").ok());
  Server server(&engine);
  auto listener = ListenSocket::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(server.Start(std::move(*listener)).ok());
  const int port = server.port();

  RetryPolicy policy;
  policy.base_backoff_ms = 1;
  RetryingClient client(
      [port] { return Client::ConnectTcp("127.0.0.1", port, "Brown"); },
      policy);
  EXPECT_TRUE(client.Execute("retrieve (T.A)").ok());

  // Semantic failures pass straight through, no retries.
  const long long retries_before = client.retries();
  auto denied = client.Execute("retrieve (T.A) as Jones");
  EXPECT_TRUE(denied.status().IsPermissionDenied());
  EXPECT_EQ(client.retries(), retries_before);

  server.Stop();
}

}  // namespace
}  // namespace viewauth
