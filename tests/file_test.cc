// Tests for the injectable file layer: the POSIX filesystem and the
// fault-injecting wrapper the crash-recovery tiers are built on.

#include "common/file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace viewauth {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class FileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "viewauth_file_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    path_ = base_ + ".dat";
    other_ = base_ + ".other";
    std::remove(path_.c_str());
    std::remove(other_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(other_.c_str());
  }

  std::string base_;
  std::string path_;
  std::string other_;
};

TEST_F(FileTest, AppendFlushSyncClose) {
  FileSystem* fs = FileSystem::Default();
  auto file = fs->NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Flush().ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path_), "hello world");

  // kAppend continues at the end; kTruncate starts over.
  auto appender = fs->NewWritableFile(path_, WriteMode::kAppend);
  ASSERT_TRUE(appender.ok());
  ASSERT_TRUE((*appender)->Append("!").ok());
  ASSERT_TRUE((*appender)->Close().ok());
  EXPECT_EQ(ReadAll(path_), "hello world!");

  auto truncator = fs->NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(truncator.ok());
  ASSERT_TRUE((*truncator)->Append("x").ok());
  ASSERT_TRUE((*truncator)->Close().ok());
  EXPECT_EQ(ReadAll(path_), "x");
}

TEST_F(FileTest, ReadExistsRenameRemoveTruncate) {
  FileSystem* fs = FileSystem::Default();
  EXPECT_FALSE(fs->FileExists(path_));
  EXPECT_TRUE(fs->ReadFileToString(path_).status().IsNotFound());

  auto file = fs->NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(fs->FileExists(path_));
  auto contents = fs->ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "0123456789");

  ASSERT_TRUE(fs->TruncateFile(path_, 4).ok());
  EXPECT_EQ(*fs->ReadFileToString(path_), "0123");

  ASSERT_TRUE(fs->RenameFile(path_, other_).ok());
  EXPECT_FALSE(fs->FileExists(path_));
  EXPECT_EQ(*fs->ReadFileToString(other_), "0123");

  ASSERT_TRUE(fs->RemoveFile(other_).ok());
  EXPECT_FALSE(fs->FileExists(other_));
  EXPECT_TRUE(fs->RemoveFile(other_).IsNotFound());
}

TEST_F(FileTest, CrashBudgetTearsTheCrossingWrite) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  fs.set_crash_after_bytes(7);
  auto file = fs.NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());  // 4 of 7
  EXPECT_FALSE(fs.crashed());
  // This write crosses the budget: only 3 more bytes land.
  Status torn = (*file)->Append("abcdef");
  EXPECT_TRUE(torn.IsInternal());
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(fs.bytes_written(), 7u);
  EXPECT_EQ(ReadAll(path_), "0123abc");

  // After the crash everything fails, including reads and new files.
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(fs.ReadFileToString(path_).ok());
  EXPECT_FALSE(fs.NewWritableFile(other_, WriteMode::kTruncate).ok());
  EXPECT_FALSE(fs.RenameFile(path_, other_).ok());
  EXPECT_FALSE(fs.TruncateFile(path_, 0).ok());
  // The torn bytes stay on disk for the real filesystem to salvage.
  EXPECT_EQ(ReadAll(path_), "0123abc");
}

TEST_F(FileTest, CrashExactlyAtBoundaryWritesNothingMore) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  fs.set_crash_after_bytes(4);
  auto file = fs.NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());
  EXPECT_FALSE(fs.crashed());  // budget reached but not crossed
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(ReadAll(path_), "0123");
}

TEST_F(FileTest, TransientSyncAndRenameFaultsAreOneShot) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  auto file = fs.NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());

  fs.FailNextSync();
  EXPECT_TRUE((*file)->Sync().IsInternal());
  EXPECT_TRUE((*file)->Sync().ok());  // the fault does not persist
  EXPECT_FALSE(fs.crashed());
  ASSERT_TRUE((*file)->Close().ok());

  fs.FailNextRename();
  EXPECT_TRUE(fs.RenameFile(path_, other_).IsInternal());
  EXPECT_TRUE(fs.FileExists(path_));  // rename did not happen
  EXPECT_TRUE(fs.RenameFile(path_, other_).ok());
  EXPECT_TRUE(fs.FileExists(other_));
}

TEST_F(FileTest, SyncDirectoryOf) {
  FileSystem* fs = FileSystem::Default();
  auto file = fs->NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(fs->SyncDirectoryOf(path_).ok());

  FaultInjectingFileSystem faulty(FileSystem::Default());
  EXPECT_TRUE(faulty.SyncDirectoryOf(path_).ok());
  faulty.FailNextSync();
  EXPECT_TRUE(faulty.SyncDirectoryOf(path_).IsInternal());
  EXPECT_TRUE(faulty.SyncDirectoryOf(path_).ok());  // one-shot fault
}

TEST_F(FileTest, ScheduledSyncFailureHitsTheNthSyncOnce) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  auto file = fs.NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());

  fs.ScheduleSyncFailure(2);
  EXPECT_TRUE((*file)->Sync().ok());          // 1st sync: before the fault
  EXPECT_TRUE((*file)->Sync().IsInternal());  // 2nd sync: the casualty
  EXPECT_TRUE((*file)->Sync().ok());          // 3rd sync: fault is spent
  EXPECT_FALSE(fs.crashed());                 // a hiccup, not a crash
  // Only successful syncs count.
  EXPECT_EQ(fs.sync_count(), 2u);
  ASSERT_TRUE((*file)->Close().ok());
}

TEST_F(FileTest, ByteBudgetSpansMultipleFiles) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  fs.set_crash_after_bytes(10);
  auto a = fs.NewWritableFile(path_, WriteMode::kTruncate);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Append("12345678").ok());  // 8 of 10
  auto b = fs.NewWritableFile(other_, WriteMode::kTruncate);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE((*b)->Append("abcdef").ok());  // tears after 2 more bytes
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(ReadAll(other_), "ab");
}

}  // namespace
}  // namespace viewauth
