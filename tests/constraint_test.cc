// Unit and property tests for the ConstraintSet decision procedures.

#include "predicate/constraint.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

namespace viewauth {
namespace {

ConstraintAtom TC(TermId t, Comparator op, int64_t c) {
  return ConstraintAtom::TermConst(t, op, Value::Int64(c));
}
ConstraintAtom TT(TermId a, Comparator op, TermId b) {
  return ConstraintAtom::TermTerm(a, op, b);
}

TEST(ConstraintSet, EmptyIsSatisfiableAndImpliesNothing) {
  ConstraintSet set;
  EXPECT_TRUE(set.IsSatisfiable());
  EXPECT_EQ(set.Implies(TC(0, Comparator::kGe, 5)), Truth::kUnknown);
}

TEST(ConstraintSet, SimpleBoundsImplication) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 10));
  EXPECT_TRUE(set.IsSatisfiable());
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGe, 5)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGt, 9)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kLt, 10)), Truth::kFalse);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kLe, 10)), Truth::kUnknown);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGe, 20)), Truth::kUnknown);
}

TEST(ConstraintSet, PinsDecideEverything) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kEq, 7));
  EXPECT_EQ(set.Implies(TC(1, Comparator::kEq, 7)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kNe, 7)), Truth::kFalse);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kLt, 8)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGt, 7)), Truth::kFalse);
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGe, 7)), Truth::kTrue);
}

TEST(ConstraintSet, ContradictoryBoundsUnsat) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 10));
  set.Add(TC(1, Comparator::kLt, 10));
  EXPECT_FALSE(set.IsSatisfiable());
  // Vacuous implication from an unsatisfiable set.
  EXPECT_EQ(set.Implies(TC(1, Comparator::kEq, 42)), Truth::kTrue);
}

TEST(ConstraintSet, IntegerTighteningClosesOpenBounds) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kInt64);
  set.Add(TC(1, Comparator::kGt, 4));
  // x > 4 over integers means x >= 5.
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGe, 5)), Truth::kTrue);
}

TEST(ConstraintSet, IntegerGapIsUnsat) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kInt64);
  set.Add(TC(1, Comparator::kGt, 4));
  set.Add(TC(1, Comparator::kLt, 5));
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, DoubleGapIsSat) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kDouble);
  set.Add(TC(1, Comparator::kGt, 4));
  set.Add(TC(1, Comparator::kLt, 5));
  EXPECT_TRUE(set.IsSatisfiable());
}

TEST(ConstraintSet, DisequalityAtEndpointTightens) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kInt64);
  set.Add(TC(1, Comparator::kGe, 5));
  set.Add(TC(1, Comparator::kLe, 6));
  set.Add(TC(1, Comparator::kNe, 5));
  set.Add(TC(1, Comparator::kNe, 6));
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, EqualityMergesClasses) {
  ConstraintSet set;
  set.Add(TT(1, Comparator::kEq, 2));
  set.Add(TT(2, Comparator::kEq, 3));
  set.Add(TC(3, Comparator::kGe, 100));
  EXPECT_EQ(set.Implies(TC(1, Comparator::kGe, 100)), Truth::kTrue);
  EXPECT_TRUE(set.AreEqual(1, 3));
  EXPECT_FALSE(set.AreEqual(1, 4));
}

TEST(ConstraintSet, OrderCycleForcesEquality) {
  ConstraintSet set;
  set.Add(TT(1, Comparator::kLe, 2));
  set.Add(TT(2, Comparator::kLe, 3));
  set.Add(TT(3, Comparator::kLe, 1));
  EXPECT_TRUE(set.IsSatisfiable());
  EXPECT_TRUE(set.AreEqual(1, 3));
  EXPECT_EQ(set.Implies(TT(1, Comparator::kEq, 2)), Truth::kTrue);
}

TEST(ConstraintSet, StrictCycleUnsat) {
  ConstraintSet set;
  set.Add(TT(1, Comparator::kLt, 2));
  set.Add(TT(2, Comparator::kLe, 1));
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, TransitiveOrderImplication) {
  ConstraintSet set;
  set.Add(TT(1, Comparator::kLt, 2));
  set.Add(TT(2, Comparator::kLe, 3));
  EXPECT_EQ(set.Implies(TT(1, Comparator::kLt, 3)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TT(3, Comparator::kLt, 1)), Truth::kFalse);
  EXPECT_EQ(set.Implies(TT(1, Comparator::kNe, 3)), Truth::kTrue);
}

TEST(ConstraintSet, BoundsPropagateAlongEdges) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 10));
  set.Add(TT(1, Comparator::kLe, 2));
  EXPECT_EQ(set.Implies(TC(2, Comparator::kGe, 10)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TC(2, Comparator::kLt, 10)), Truth::kFalse);
}

TEST(ConstraintSet, DisjointBoundsImplyOrder) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kLe, 5));
  set.Add(TC(2, Comparator::kGt, 5));
  EXPECT_EQ(set.Implies(TT(1, Comparator::kLt, 2)), Truth::kTrue);
  EXPECT_EQ(set.Implies(TT(1, Comparator::kEq, 2)), Truth::kFalse);
  EXPECT_EQ(set.Implies(TT(2, Comparator::kGt, 1)), Truth::kTrue);
}

TEST(ConstraintSet, PinnedPairEquality) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kEq, 5));
  set.Add(TC(2, Comparator::kEq, 5));
  EXPECT_EQ(set.Implies(TT(1, Comparator::kEq, 2)), Truth::kTrue);
}

TEST(ConstraintSet, StringConstraints) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kString);
  set.AddTermConst(1, Comparator::kEq, Value::String("Acme"));
  EXPECT_EQ(set.Implies(ConstraintAtom::TermConst(1, Comparator::kEq,
                                                  Value::String("Acme"))),
            Truth::kTrue);
  EXPECT_EQ(set.Implies(ConstraintAtom::TermConst(1, Comparator::kEq,
                                                  Value::String("Apex"))),
            Truth::kFalse);
  EXPECT_EQ(set.Implies(ConstraintAtom::TermConst(1, Comparator::kLt,
                                                  Value::String("B"))),
            Truth::kTrue);
}

TEST(ConstraintSet, StringVsNumericIsUnsat) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kString);
  set.Add(TC(1, Comparator::kEq, 5));
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, StringVsNumericDisequalityIsVacuous) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kString);
  set.Add(TC(1, Comparator::kNe, 5));
  EXPECT_TRUE(set.IsSatisfiable());
}

TEST(ConstraintSet, MixedTypeMergedClassUnsat) {
  ConstraintSet set;
  set.DeclareTermType(1, ValueType::kString);
  set.DeclareTermType(2, ValueType::kInt64);
  set.Add(TT(1, Comparator::kEq, 2));
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, ContradictsWith) {
  ConstraintSet mu;
  mu.Add(TC(1, Comparator::kGe, 300000));
  mu.Add(TC(1, Comparator::kLe, 600000));
  ConstraintSet lambda;
  lambda.Add(TC(1, Comparator::kLt, 300000));
  EXPECT_TRUE(mu.ContradictsWith(lambda));

  ConstraintSet overlap;
  overlap.Add(TC(1, Comparator::kGe, 200000));
  overlap.Add(TC(1, Comparator::kLe, 400000));
  EXPECT_FALSE(mu.ContradictsWith(overlap));
}

TEST(ConstraintSet, ImpliesAll) {
  ConstraintSet tight;
  tight.Add(TC(1, Comparator::kGe, 400000));
  tight.Add(TC(1, Comparator::kLe, 500000));
  ConstraintSet loose;
  loose.Add(TC(1, Comparator::kGe, 300000));
  loose.Add(TC(1, Comparator::kLe, 600000));
  EXPECT_EQ(tight.ImpliesAll(loose), Truth::kTrue);
  EXPECT_EQ(loose.ImpliesAll(tight), Truth::kUnknown);
}

TEST(ConstraintSet, IsUnconstrainedAndInteractions) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 5));
  set.Add(TT(2, Comparator::kLt, 3));
  EXPECT_FALSE(set.IsUnconstrained(1));
  EXPECT_FALSE(set.IsUnconstrained(2));
  EXPECT_TRUE(set.IsUnconstrained(99));
  EXPECT_TRUE(set.InteractsWithOtherTerms(2));  // order edge to term 3
  EXPECT_TRUE(set.InteractsWithOtherTerms(3));
  EXPECT_FALSE(set.InteractsWithOtherTerms(1));  // constant bound only
}

TEST(ConstraintSet, ForgetTermPreservesConsequences) {
  ConstraintSet set;
  set.Add(TT(1, Comparator::kEq, 2));
  set.Add(TT(2, Comparator::kEq, 3));
  set.ForgetTerm(2);
  EXPECT_EQ(set.Implies(TT(1, Comparator::kEq, 3)), Truth::kTrue);
}

TEST(ConstraintSet, ForgetLastTermEmptiesTheSet) {
  ConstraintSet set;
  set.Add(TC(7, Comparator::kGe, 250000));
  set.ForgetTerm(7);
  EXPECT_EQ(set.atom_count(), 0);
  EXPECT_TRUE(set.IsSatisfiable());
}

TEST(ConstraintSet, ForgetTermPreservesUnsat) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGt, 5));
  set.Add(TC(1, Comparator::kLt, 5));
  set.ForgetTerm(1);
  EXPECT_FALSE(set.IsSatisfiable());
}

TEST(ConstraintSet, SatisfiedEvaluatesAssignments) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 10));
  set.Add(TT(1, Comparator::kLt, 2));
  std::map<TermId, Value> good{{1, Value::Int64(10)}, {2, Value::Int64(11)}};
  std::map<TermId, Value> bad{{1, Value::Int64(10)}, {2, Value::Int64(10)}};
  std::map<TermId, Value> partial{{1, Value::Int64(10)}};
  EXPECT_TRUE(set.Satisfied(good));
  EXPECT_FALSE(set.Satisfied(bad));
  EXPECT_FALSE(set.Satisfied(partial));
}

TEST(ConstraintSet, ExportAtomsRoundTrips) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 3));
  set.Add(TT(1, Comparator::kEq, 2));
  set.Add(TT(2, Comparator::kLt, 3));
  set.Add(TC(4, Comparator::kNe, 9));
  ConstraintSet rebuilt;
  for (const ConstraintAtom& atom : set.ExportAtoms()) {
    rebuilt.Add(atom);
  }
  // The rebuilt set proves the same facts.
  EXPECT_EQ(rebuilt.Implies(TC(2, Comparator::kGe, 3)), Truth::kTrue);
  EXPECT_EQ(rebuilt.Implies(TT(1, Comparator::kLt, 3)), Truth::kTrue);
  EXPECT_EQ(rebuilt.Implies(TC(4, Comparator::kEq, 9)), Truth::kFalse);
}

TEST(ConstraintSet, PinnedConstant) {
  ConstraintSet set;
  set.Add(TC(1, Comparator::kGe, 5));
  set.Add(TC(1, Comparator::kLe, 5));
  ASSERT_TRUE(set.PinnedConstant(1).has_value());
  EXPECT_EQ(*set.PinnedConstant(1), Value::Int64(5));
  EXPECT_FALSE(set.PinnedConstant(2).has_value());
}

// ---------------------------------------------------------------------
// Property tests: the solver against brute-force enumeration over a
// small integer domain.
// ---------------------------------------------------------------------

class ConstraintPropertyTest : public ::testing::TestWithParam<int> {};

// Enumerates all assignments of `terms` over {0..4} and evaluates.
std::vector<std::map<TermId, Value>> AllAssignments(int terms, int domain) {
  std::vector<std::map<TermId, Value>> out;
  int total = 1;
  for (int i = 0; i < terms; ++i) total *= domain;
  for (int code = 0; code < total; ++code) {
    std::map<TermId, Value> assignment;
    int rest = code;
    for (int t = 0; t < terms; ++t) {
      assignment[t] = Value::Int64(rest % domain);
      rest /= domain;
    }
    out.push_back(std::move(assignment));
  }
  return out;
}

TEST_P(ConstraintPropertyTest, SolverAgreesWithBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  constexpr int kTerms = 3;
  constexpr int kDomain = 5;
  const std::vector<std::map<TermId, Value>> assignments =
      AllAssignments(kTerms, kDomain);
  std::uniform_int_distribution<int> term_dist(0, kTerms - 1);
  std::uniform_int_distribution<int> const_dist(0, kDomain - 1);
  std::uniform_int_distribution<int> op_dist(0, 5);
  std::uniform_int_distribution<int> kind_dist(0, 1);
  std::uniform_int_distribution<int> count_dist(1, 5);

  auto random_atom = [&]() {
    Comparator op = static_cast<Comparator>(op_dist(rng));
    TermId lhs = term_dist(rng);
    if (kind_dist(rng) == 0) {
      return TC(lhs, op, const_dist(rng));
    }
    return TT(lhs, op, term_dist(rng));
  };

  for (int round = 0; round < 60; ++round) {
    ConstraintSet set;
    for (int t = 0; t < kTerms; ++t) {
      // NOTE: the domain {0..4} is a subset of int64; bounds outside it
      // can make the solver claim satisfiability that brute force over
      // the subdomain cannot see, so constants stay inside the domain.
      set.DeclareTermType(t, ValueType::kInt64);
    }
    const int atoms = count_dist(rng);
    std::vector<ConstraintAtom> chosen;
    for (int i = 0; i < atoms; ++i) {
      ConstraintAtom atom = random_atom();
      chosen.push_back(atom);
      set.Add(atom);
    }

    // Brute-force model count.
    int models = 0;
    for (const auto& assignment : assignments) {
      if (set.Satisfied(assignment)) ++models;
    }

    // Soundness of unsat: if the solver says unsatisfiable, brute force
    // must find no model. (The converse may fail only for bounds outside
    // the brute-force domain, which we excluded.)
    if (!set.IsSatisfiable()) {
      EXPECT_EQ(models, 0) << set.ToString();
    }

    if (models == 0) continue;

    // Implication: kTrue answers must hold in every model; kFalse
    // answers must hold in none.
    for (int probe = 0; probe < 8; ++probe) {
      ConstraintAtom atom = random_atom();
      Truth verdict = set.Implies(atom);
      if (verdict == Truth::kUnknown) continue;
      ConstraintSet single;
      single.Add(atom);
      int holds = 0;
      for (const auto& assignment : assignments) {
        if (set.Satisfied(assignment) && single.Satisfied(assignment)) {
          ++holds;
        }
      }
      if (verdict == Truth::kTrue) {
        EXPECT_EQ(holds, models)
            << set.ToString() << "  |=  "
            << atom.ToString([](TermId t) { return "t" + std::to_string(t); });
      } else {
        EXPECT_EQ(holds, 0)
            << set.ToString() << "  contradicts  "
            << atom.ToString([](TermId t) { return "t" + std::to_string(t); });
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace viewauth
