// Differential soundness: the cached + parallel + optimized pipeline must
// be observationally identical to a fresh canonical single-threaded run.
//
// Promoted from the EXP-S1 randomized campaign (bench/exp_fuzz_soundness)
// into the test tier: hundreds of deterministic seeded scenarios — random
// schemas, views, grants, queries, option combinations — each executed
// through two independent authorizers:
//   * the CANONICAL run: no cache, no parallelism, canonical data plan;
//   * the FAST run: authorization cache + parallel meta-evaluation +
//     late-materialized data plan, executed TWICE so the repeat is
//     served from the cache, then once more with the tuple-at-a-time
//     optimizer so both optimized data plans are differenced.
// Every observable — delivered answer, raw answer, mask (compared by
// alpha-normalized structural keys), inferred permits (synthetic w-vars
// normalized), denied/full-access flags — must agree across all four
// executions.

#include <algorithm>
#include <random>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "authz/authorizer.h"
#include "authz/authz_cache.h"
#include "calculus/conjunctive_query.h"
#include "meta/view_store.h"
#include "parser/ast.h"
#include "storage/relation.h"

namespace viewauth {
namespace {

constexpr const char* kColumns[] = {"A", "B", "C", "D"};

// Synthetic variables (base-mode selection conjoins) get fresh ids from
// the catalog allocator; their numbering depends on execution history, so
// permit texts are compared with every w-var collapsed.
std::string NormalizeSyntheticVars(const std::string& text) {
  static const std::regex kWVar("w[0-9]+");
  return std::regex_replace(text, kWVar, "w#");
}

// Everything observable about one authorization, in comparable form.
struct Observed {
  bool denied = false;
  bool full_access = false;
  std::vector<Tuple> answer;
  std::vector<Tuple> raw_answer;
  std::vector<std::string> mask_keys;
  std::vector<std::string> permits;

  bool operator==(const Observed& other) const = default;
};

Observed Summarize(const AuthorizationResult& result) {
  Observed o;
  o.denied = result.denied;
  o.full_access = result.full_access;
  o.answer = result.answer.SortedRows();
  o.raw_answer = result.raw_answer.SortedRows();
  for (const MetaTuple& tuple : result.mask.tuples()) {
    o.mask_keys.push_back(tuple.StructuralKey(/*include_provenance=*/false));
  }
  std::sort(o.mask_keys.begin(), o.mask_keys.end());
  for (const InferredPermit& permit : result.permits) {
    o.permits.push_back(NormalizeSyntheticVars(permit.ToString()));
  }
  std::sort(o.permits.begin(), o.permits.end());
  return o;
}

// Runs one scenario through the canonical and fast pipelines over two
// independently built (but identically defined) catalogs, and reports a
// divergence via gtest on the caller's line.
struct ScenarioSetup {
  const DatabaseInstance* db;
  ViewCatalog* canonical_catalog;
  ViewCatalog* fast_catalog;
};

::testing::AssertionResult PipelinesAgree(const ScenarioSetup& setup,
                                          const ConjunctiveQuery& query,
                                          AuthorizationOptions options) {
  AuthorizationOptions canonical_options = options;
  canonical_options.enable_authz_cache = false;
  canonical_options.use_meta_cache = false;
  canonical_options.parallel_meta_evaluation = false;
  canonical_options.use_optimized_data_plan = false;
  canonical_options.use_latemat_data_plan = false;
  canonical_options.use_vectorized_data_plan = false;

  // The fast leg is the full default pipeline: vectorized columnar data
  // plan with batch-fused compiled-mask application.
  AuthorizationOptions fast_options = options;
  fast_options.enable_authz_cache = true;
  fast_options.use_meta_cache = true;
  fast_options.parallel_meta_evaluation = true;
  fast_options.use_optimized_data_plan = true;
  fast_options.use_latemat_data_plan = true;
  fast_options.use_vectorized_data_plan = true;

  // The late-materialized and tuple-at-a-time optimizers, differencing
  // the three optimized data plans against each other (and canonical).
  AuthorizationOptions latemat_options = fast_options;
  latemat_options.use_vectorized_data_plan = false;
  AuthorizationOptions tuple_options = latemat_options;
  tuple_options.use_latemat_data_plan = false;

  Authorizer canonical(setup.db, setup.canonical_catalog);
  AuthzCache cache;
  Authorizer fast(setup.db, setup.fast_catalog, &cache);

  auto canonical_result = canonical.Retrieve("u", query, canonical_options);
  auto cold = fast.Retrieve("u", query, fast_options);
  auto warm = fast.Retrieve("u", query, fast_options);  // cache-served
  auto latemat_plan = fast.Retrieve("u", query, latemat_options);
  auto tuple_plan = fast.Retrieve("u", query, tuple_options);
  if (!canonical_result.ok()) {
    return ::testing::AssertionFailure()
           << "canonical retrieve failed: " << canonical_result.status();
  }
  if (!cold.ok() || !warm.ok()) {
    return ::testing::AssertionFailure()
           << "fast retrieve failed: "
           << (cold.ok() ? warm.status() : cold.status());
  }
  if (!latemat_plan.ok()) {
    return ::testing::AssertionFailure()
           << "latemat-plan retrieve failed: " << latemat_plan.status();
  }
  if (!tuple_plan.ok()) {
    return ::testing::AssertionFailure()
           << "tuple-plan retrieve failed: " << tuple_plan.status();
  }
  const AuthzStats stats = cache.Snapshot();
  if (stats.mask_hits < 1) {
    return ::testing::AssertionFailure()
           << "repeat retrieve was not served from the mask cache";
  }

  const Observed expected = Summarize(*canonical_result);
  const Observed cold_obs = Summarize(*cold);
  const Observed warm_obs = Summarize(*warm);
  const Observed latemat_obs = Summarize(*latemat_plan);
  const Observed tuple_obs = Summarize(*tuple_plan);
  auto describe = [&](const Observed& got, const char* label) {
    return ::testing::AssertionFailure()
           << label << " run diverged on query " << query.ToString()
           << ": denied " << expected.denied << "/" << got.denied
           << ", full_access " << expected.full_access << "/"
           << got.full_access << ", answer rows " << expected.answer.size()
           << "/" << got.answer.size() << ", mask tuples "
           << expected.mask_keys.size() << "/" << got.mask_keys.size()
           << ", permits " << expected.permits.size() << "/"
           << got.permits.size();
  };
  if (!(cold_obs == expected)) {
    return describe(cold_obs, "cold fast (vectorized)");
  }
  if (!(warm_obs == expected)) {
    return describe(warm_obs, "warm (cached, vectorized) fast");
  }
  if (!(latemat_obs == expected)) return describe(latemat_obs, "latemat-plan");
  if (!(tuple_obs == expected)) return describe(tuple_obs, "tuple-plan");
  return ::testing::AssertionSuccess();
}

TEST(DifferentialSoundness, SingleRelationScenarios) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> val(0, 7);
  std::uniform_int_distribution<int> rows(1, 14);
  std::uniform_int_distribution<int> col(0, 3);
  std::uniform_int_distribution<int> ncond(0, 2);
  std::uniform_int_distribution<int> nviews(1, 4);
  std::uniform_int_distribution<int> opd(0, 5);

  int executed = 0;
  for (int scenario = 0; scenario < 260; ++scenario) {
    DatabaseInstance db;
    ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                      "R",
                                      {{"A", ValueType::kInt64},
                                       {"B", ValueType::kInt64},
                                       {"C", ValueType::kInt64},
                                       {"D", ValueType::kInt64}})
                                      .value())
                    .ok());
    for (int i = rows(rng); i > 0; --i) {
      (void)db.Insert("R", Tuple({Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng))}));
    }

    // Random views; both catalogs get the identical definition sequence
    // so their variable ids line up.
    ViewCatalog canonical_catalog(&db.schema());
    ViewCatalog fast_catalog(&db.schema());
    const int view_count = nviews(rng);
    for (int v = 0; v < view_count; ++v) {
      std::set<int> view_targets;
      while (view_targets.empty()) {
        for (int c = 0; c < 4; ++c) {
          if (rng() % 2 == 0) view_targets.insert(c);
        }
      }
      std::vector<AttributeRef> targets;
      for (int c : view_targets) {
        targets.push_back(AttributeRef{"R", 1, kColumns[c]});
      }
      std::vector<Condition> conditions;
      for (int i = ncond(rng); i > 0; --i) {
        Condition cond;
        cond.lhs = AttributeRef{"R", 1, kColumns[col(rng)]};
        cond.op = static_cast<Comparator>(opd(rng));
        cond.rhs = ConditionOperand::Const(Value::Int64(val(rng)));
        conditions.push_back(std::move(cond));
      }
      std::string name = "V" + std::to_string(v);
      auto view =
          ConjunctiveQuery::Build(db.schema(), name, targets, conditions);
      if (!view.ok()) continue;
      if (!canonical_catalog.DefineView(name, *view).ok()) continue;
      ASSERT_TRUE(fast_catalog.DefineView(name, *view).ok());
      ASSERT_TRUE(canonical_catalog.Permit(name, "u").ok());
      ASSERT_TRUE(fast_catalog.Permit(name, "u").ok());
    }

    // Random query.
    std::set<int> target_set;
    while (target_set.empty()) {
      for (int c = 0; c < 4; ++c) {
        if (rng() % 2 == 0) target_set.insert(c);
      }
    }
    std::vector<AttributeRef> targets;
    for (int c : target_set) {
      targets.push_back(AttributeRef{"R", 1, kColumns[c]});
    }
    std::vector<Condition> conditions;
    for (int i = ncond(rng); i > 0; --i) {
      Condition cond;
      cond.lhs = AttributeRef{"R", 1, kColumns[col(rng)]};
      cond.op = static_cast<Comparator>(opd(rng));
      cond.rhs = ConditionOperand::Const(Value::Int64(val(rng)));
      conditions.push_back(std::move(cond));
    }
    auto query = ConjunctiveQuery::Build(db.schema(), "q", targets,
                                         conditions);
    if (!query.ok()) continue;

    AuthorizationOptions options;
    options.four_case = rng() % 2 == 0;
    options.padding = rng() % 2 == 0;
    options.subsumption = rng() % 2 == 0;
    options.extended_masks = rng() % 2 == 0;

    ScenarioSetup setup{&db, &canonical_catalog, &fast_catalog};
    EXPECT_TRUE(PipelinesAgree(setup, *query, options))
        << "scenario " << scenario;
    ++executed;
    if (HasFailure()) break;  // one divergence is enough detail
  }
  // The promoted tier's contract: at least 200 executed comparisons.
  EXPECT_GE(executed, 200);
}

TEST(DifferentialSoundness, TwoRelationJoinScenarios) {
  std::mt19937 rng(8062026);
  std::uniform_int_distribution<int> val(0, 7);
  std::uniform_int_distribution<int> rows(1, 14);

  int executed = 0;
  for (int scenario = 0; scenario < 120; ++scenario) {
    DatabaseInstance db;
    ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                      "R1",
                                      {{"K", ValueType::kInt64},
                                       {"A", ValueType::kInt64}},
                                      {0})
                                      .value())
                    .ok());
    ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                      "R2",
                                      {{"K", ValueType::kInt64},
                                       {"B", ValueType::kInt64}},
                                      {0})
                                      .value())
                    .ok());
    std::set<int64_t> keys;
    for (int i = rows(rng); i > 0; --i) keys.insert(val(rng));
    for (int64_t k : keys) {
      (void)db.Insert("R1", Tuple({Value::Int64(k), Value::Int64(val(rng))}));
      if (rng() % 4 != 0) {
        (void)db.Insert("R2",
                        Tuple({Value::Int64(k), Value::Int64(val(rng))}));
      }
    }

    const int64_t view_lo = val(rng);
    auto make_join_query = [&](const std::string& name, int64_t lo) {
      std::vector<AttributeRef> targets{AttributeRef{"R1", 1, "K"},
                                        AttributeRef{"R1", 1, "A"},
                                        AttributeRef{"R2", 1, "B"}};
      std::vector<Condition> conditions;
      Condition join;
      join.lhs = AttributeRef{"R1", 1, "K"};
      join.op = Comparator::kEq;
      join.rhs = ConditionOperand::Attr(AttributeRef{"R2", 1, "K"});
      conditions.push_back(join);
      Condition range;
      range.lhs = AttributeRef{"R1", 1, "A"};
      range.op = Comparator::kGe;
      range.rhs = ConditionOperand::Const(Value::Int64(lo));
      conditions.push_back(range);
      return ConjunctiveQuery::Build(db.schema(), name, targets, conditions);
    };

    ViewCatalog canonical_catalog(&db.schema());
    ViewCatalog fast_catalog(&db.schema());
    auto view = make_join_query("VJ", view_lo);
    ASSERT_TRUE(view.ok());
    if (!canonical_catalog.DefineView("VJ", *view).ok()) continue;
    ASSERT_TRUE(fast_catalog.DefineView("VJ", *view).ok());
    ASSERT_TRUE(canonical_catalog.Permit("VJ", "u").ok());
    ASSERT_TRUE(fast_catalog.Permit("VJ", "u").ok());

    auto query = make_join_query("q", view_lo + (rng() % 3));
    ASSERT_TRUE(query.ok());

    AuthorizationOptions options;
    options.four_case = rng() % 2 == 0;
    options.padding = rng() % 2 == 0;
    options.subsumption = rng() % 2 == 0;
    options.extended_masks = rng() % 2 == 0;
    // Self-joins exercised here: multi-relation queries take the
    // parallel per-relation preparation path.
    options.self_joins = rng() % 2 == 0;

    ScenarioSetup setup{&db, &canonical_catalog, &fast_catalog};
    EXPECT_TRUE(PipelinesAgree(setup, *query, options))
        << "join scenario " << scenario;
    ++executed;
    if (HasFailure()) break;
  }
  EXPECT_GE(executed, 100);
}

// Write-mix scenarios: a PERSISTENT fast authorizer (one cache living
// across the whole scenario) races a canonical oracle through an
// interleaving of permits, denies and inserts. Each step mutates both
// catalogs identically, then differences a query from a small repeating
// pool across all three data plans — canonical, optimized tuple-at-a-
// time, and late-materialized — so cache entries that survive a
// mutation they depended on are caught by the very next repeat.
TEST(DifferentialSoundness, WriteMixMutationScenarios) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> val(0, 7);
  std::uniform_int_distribution<int> rows(2, 12);
  std::uniform_int_distribution<int> col(0, 3);
  std::uniform_int_distribution<int> ncond(0, 2);
  std::uniform_int_distribution<int> opd(0, 5);
  std::uniform_int_distribution<int> roll(0, 99);

  auto random_query = [&](const DatabaseInstance& db, const std::string& name)
      -> Result<ConjunctiveQuery> {
    std::set<int> target_set;
    while (target_set.empty()) {
      for (int c = 0; c < 4; ++c) {
        if (rng() % 2 == 0) target_set.insert(c);
      }
    }
    std::vector<AttributeRef> targets;
    for (int c : target_set) targets.push_back(AttributeRef{"R", 1, kColumns[c]});
    std::vector<Condition> conditions;
    for (int i = ncond(rng); i > 0; --i) {
      Condition cond;
      cond.lhs = AttributeRef{"R", 1, kColumns[col(rng)]};
      cond.op = static_cast<Comparator>(opd(rng));
      cond.rhs = ConditionOperand::Const(Value::Int64(val(rng)));
      conditions.push_back(std::move(cond));
    }
    return ConjunctiveQuery::Build(db.schema(), name, targets, conditions);
  };

  AuthorizationOptions canonical_options;
  canonical_options.enable_authz_cache = false;
  canonical_options.use_meta_cache = false;
  canonical_options.parallel_meta_evaluation = false;
  canonical_options.use_optimized_data_plan = false;
  canonical_options.use_latemat_data_plan = false;
  canonical_options.use_vectorized_data_plan = false;
  AuthorizationOptions vectorized_options;  // defaults: cache + vectorized
  AuthorizationOptions latemat_options;
  latemat_options.use_vectorized_data_plan = false;
  AuthorizationOptions tuple_options;
  tuple_options.use_vectorized_data_plan = false;
  tuple_options.use_latemat_data_plan = false;

  int compared = 0;
  long long cache_hits = 0;
  for (int scenario = 0; scenario < 40 && !HasFailure(); ++scenario) {
    DatabaseInstance db;
    ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                      "R",
                                      {{"A", ValueType::kInt64},
                                       {"B", ValueType::kInt64},
                                       {"C", ValueType::kInt64},
                                       {"D", ValueType::kInt64}})
                                      .value())
                    .ok());
    for (int i = rows(rng); i > 0; --i) {
      (void)db.Insert("R", Tuple({Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng)),
                                  Value::Int64(val(rng))}));
    }

    ViewCatalog canonical_catalog(&db.schema());
    ViewCatalog fast_catalog(&db.schema());
    std::vector<std::string> views;
    for (int v = 0; v < 3; ++v) {
      std::string name = "V" + std::to_string(v);
      auto view = random_query(db, name);
      if (!view.ok()) continue;
      if (!canonical_catalog.DefineView(name, *view).ok()) continue;
      ASSERT_TRUE(fast_catalog.DefineView(name, *view).ok());
      ASSERT_TRUE(canonical_catalog.Permit(name, "u").ok());
      ASSERT_TRUE(fast_catalog.Permit(name, "u").ok());
      views.push_back(std::move(name));
    }
    if (views.empty()) continue;

    // The repeating query pool: repeats within a scenario ride the
    // persistent cache unless an interleaved mutation dropped them.
    std::vector<ConjunctiveQuery> pool;
    for (int q = 0; q < 3; ++q) {
      auto query = random_query(db, "q" + std::to_string(q));
      if (query.ok()) pool.push_back(*std::move(query));
    }
    if (pool.empty()) continue;

    Authorizer canonical(&db, &canonical_catalog);
    AuthzCache cache;
    Authorizer fast(&db, &fast_catalog, &cache);

    for (int step = 0; step < 12; ++step) {
      const int action = roll(rng);
      const std::string& view = views[rng() % views.size()];
      if (action < 25) {  // permit (possibly re-permit after a deny)
        ASSERT_TRUE(canonical_catalog.Permit(view, "u").ok());
        ASSERT_TRUE(fast_catalog.Permit(view, "u").ok());
      } else if (action < 45) {  // deny (fails when already revoked —
                                 // both catalogs must agree either way)
        const bool c_ok = canonical_catalog.Deny(view, "u").ok();
        const bool f_ok = fast_catalog.Deny(view, "u").ok();
        ASSERT_EQ(c_ok, f_ok) << view;
      } else if (action < 65) {  // insert (shared database instance)
        (void)db.Insert("R", Tuple({Value::Int64(val(rng)),
                                    Value::Int64(val(rng)),
                                    Value::Int64(val(rng)),
                                    Value::Int64(val(rng))}));
      }
      // else: read-only step.

      const ConjunctiveQuery& query = pool[rng() % pool.size()];
      auto want = canonical.Retrieve("u", query, canonical_options);
      auto vectorized = fast.Retrieve("u", query, vectorized_options);
      auto latemat = fast.Retrieve("u", query, latemat_options);
      auto tuple_plan = fast.Retrieve("u", query, tuple_options);
      ASSERT_TRUE(want.ok()) << want.status();
      ASSERT_TRUE(vectorized.ok()) << vectorized.status();
      ASSERT_TRUE(latemat.ok()) << latemat.status();
      ASSERT_TRUE(tuple_plan.ok()) << tuple_plan.status();
      const Observed expected = Summarize(*want);
      EXPECT_TRUE(Summarize(*vectorized) == expected)
          << "vectorized plan diverged: scenario " << scenario << " step "
          << step << " query " << query.ToString();
      EXPECT_TRUE(Summarize(*latemat) == expected)
          << "latemat plan diverged: scenario " << scenario << " step "
          << step << " query " << query.ToString();
      EXPECT_TRUE(Summarize(*tuple_plan) == expected)
          << "tuple plan diverged: scenario " << scenario << " step " << step
          << " query " << query.ToString();
      ++compared;
      if (HasFailure()) break;
    }
    cache_hits += cache.Snapshot().mask_hits;
  }
  EXPECT_GE(compared, 400);
  // The scenarios must actually exercise the cache across mutations.
  EXPECT_GT(cache_hits, 0);
}

}  // namespace
}  // namespace viewauth
