// Unit tests for MetaCell / MetaTuple / MetaRelation representation.

#include "meta/meta_tuple.h"

#include <gtest/gtest.h>

namespace viewauth {
namespace {

TEST(MetaCell, PaperNotation) {
  auto namer = DefaultVarName;
  EXPECT_EQ(MetaCell::Blank().ToString(namer), "");
  EXPECT_EQ(MetaCell::Blank(true).ToString(namer), "*");
  EXPECT_EQ(MetaCell::Const(Value::String("Acme"), false).ToString(namer),
            "Acme");
  EXPECT_EQ(MetaCell::Const(Value::String("Acme"), true).ToString(namer),
            "Acme*");
  EXPECT_EQ(MetaCell::Var(1, false).ToString(namer), "x1");
  EXPECT_EQ(MetaCell::Var(1, true).ToString(namer), "x1*");
}

TEST(MetaCell, Equality) {
  EXPECT_EQ(MetaCell::Blank(), MetaCell::Blank());
  EXPECT_FALSE(MetaCell::Blank() == MetaCell::Blank(true));
  EXPECT_EQ(MetaCell::Var(3, true), MetaCell::Var(3, true));
  EXPECT_FALSE(MetaCell::Var(3, true) == MetaCell::Var(4, true));
  EXPECT_FALSE(MetaCell::Const(Value::Int64(1), true) ==
               MetaCell::Var(1, true));
}

MetaTuple ElpEmployeeTuple() {
  // (x1*, *, _) with x1 defined over atoms {1, 3} and origin {1}.
  MetaTuple t;
  t.cells().push_back(MetaCell::Var(1, true));
  t.cells().push_back(MetaCell::Blank(true));
  t.cells().push_back(MetaCell::Blank(false));
  t.views().insert("ELP");
  t.var_atoms()[1] = {1, 3};
  t.origin_atoms().insert(1);
  return t;
}

TEST(MetaTuple, CellVarsAndPositions) {
  MetaTuple t = ElpEmployeeTuple();
  EXPECT_EQ(t.CellVars(), std::set<VarId>{1});
  EXPECT_EQ(t.CellsOfVar(1), std::vector<int>{0});
  EXPECT_TRUE(t.CellsOfVar(99).empty());
}

TEST(MetaTuple, DanglingDetection) {
  MetaTuple t = ElpEmployeeTuple();
  EXPECT_TRUE(t.HasDanglingVariable());  // atom 3 uncovered
  t.origin_atoms().insert(3);
  EXPECT_FALSE(t.HasDanglingVariable());
  // Synthetic variables (no var_atoms entry) never dangle.
  MetaTuple synth;
  synth.cells().push_back(MetaCell::Var(1000001, true));
  EXPECT_FALSE(synth.HasDanglingVariable());
}

TEST(MetaTuple, ClearVariableRemovesEverything) {
  MetaTuple t = ElpEmployeeTuple();
  t.constraints().AddTermConst(1, Comparator::kGe, Value::Int64(5));
  t.ClearVariable(1);
  EXPECT_TRUE(t.cells()[0].is_blank());
  EXPECT_TRUE(t.cells()[0].projected);  // star preserved
  EXPECT_EQ(t.constraints().atom_count(), 0);
  EXPECT_FALSE(t.var_atoms().contains(1));
  EXPECT_FALSE(t.HasDanglingVariable());
}

TEST(MetaTuple, ViewLabelJoinsSorted) {
  MetaTuple t;
  t.views().insert("SAE");
  t.views().insert("EST");
  EXPECT_EQ(t.ViewLabel(), "EST,SAE");
}

TEST(MetaTuple, StructuralKeyAlphaEquivalence) {
  MetaTuple a = ElpEmployeeTuple();
  MetaTuple b = ElpEmployeeTuple();
  // Rename variable 1 -> 7 consistently in b.
  b.cells()[0] = MetaCell::Var(7, true);
  b.var_atoms().clear();
  b.var_atoms()[7] = {1, 3};
  EXPECT_EQ(a.StructuralKey(), b.StructuralKey());

  // Different constraints break equivalence.
  b.constraints().AddTermConst(7, Comparator::kGe, Value::Int64(10));
  EXPECT_NE(a.StructuralKey(), b.StructuralKey());
}

TEST(MetaTuple, StructuralKeyProvenanceToggle) {
  MetaTuple a = ElpEmployeeTuple();
  MetaTuple b = ElpEmployeeTuple();
  b.origin_atoms().clear();
  b.origin_atoms().insert(3);
  EXPECT_NE(a.StructuralKey(true), b.StructuralKey(true));
  EXPECT_EQ(a.StructuralKey(false), b.StructuralKey(false));
}

TEST(MetaTuple, ToStringMatchesPaperStyle) {
  MetaTuple t = ElpEmployeeTuple();
  EXPECT_EQ(t.ToString(DefaultVarName), "(x1*, *, )");
}

TEST(MetaRelation, TableRendering) {
  MetaRelation rel({Attribute{"NAME", ValueType::kString},
                    Attribute{"SALARY", ValueType::kInt64}});
  MetaTuple t;
  t.cells().push_back(MetaCell::Blank(true));
  t.cells().push_back(MetaCell::Blank(true));
  t.views().insert("SAE");
  rel.Add(t);
  std::string rendered = rel.ToString(DefaultVarName);
  EXPECT_NE(rendered.find("VIEW"), std::string::npos);
  EXPECT_NE(rendered.find("SAE"), std::string::npos);
  EXPECT_NE(rendered.find("NAME"), std::string::npos);
  EXPECT_EQ(rel.arity(), 2);
  EXPECT_EQ(rel.size(), 1);
}

}  // namespace
}  // namespace viewauth
