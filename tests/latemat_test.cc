// Tests for the late-materialized join pipeline (algebra/latemat.h), the
// in-place join-key hashing it relies on (storage/key_view.h), and the
// rows_scanned accounting contract shared by every data-side strategy.

#include <gtest/gtest.h>

#include <random>

#include "algebra/evaluator.h"
#include "algebra/latemat.h"
#include "algebra/optimizer.h"
#include "authz/compiled_mask.h"
#include "parser/parser.h"
#include "storage/key_view.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

// ---------------------------------------------------------------------
// KeyView: hash coherence with Tuple::Hash and strict equality.
// ---------------------------------------------------------------------

KeyView ViewOf(const std::vector<Value>& values) {
  KeyView view;
  for (const Value& v : values) view.Add(v);
  return view;
}

TEST(KeyView, HashMatchesTupleHashAcrossTypes) {
  const std::vector<std::vector<Value>> keys = {
      {Value::Int64(42)},
      {Value::Int64(-7), Value::Int64(0)},
      {Value::Double(3.25)},
      {Value::Double(5.0), Value::Int64(5)},
      {Value::String("Acme")},
      {Value::String(""), Value::String("bq-45")},
      {Value::Null()},
      {Value::Null(), Value::Int64(1), Value::String("x")},
      {},
  };
  for (const std::vector<Value>& values : keys) {
    const Tuple tuple{std::vector<Value>(values)};
    EXPECT_EQ(ViewOf(values).Hash(), tuple.Hash())
        << "key of arity " << values.size();
  }
}

TEST(KeyView, EqualityIsStrictAndCoherentWithHash) {
  // Strict Value equality: Int64(5) and Double(5.0) are different keys
  // even though Value::Satisfies(kEq) relates them numerically — this is
  // the Tuple::operator== semantics the hash join has always used.
  const std::vector<Value> int_key = {Value::Int64(5)};
  const std::vector<Value> double_key = {Value::Double(5.0)};
  EXPECT_FALSE(ViewOf(int_key) == ViewOf(double_key));
  EXPECT_TRUE(ViewOf(int_key) == ViewOf(int_key));

  // NULL == NULL for grouping purposes, as with Tuple equality.
  const std::vector<Value> null_key = {Value::Null()};
  EXPECT_TRUE(ViewOf(null_key) == ViewOf(null_key));

  // Equal views must hash equal (the unordered-map contract).
  const std::vector<Value> a = {Value::String("Jones"), Value::Int64(26000)};
  const std::vector<Value> b = {Value::String("Jones"), Value::Int64(26000)};
  ASSERT_TRUE(ViewOf(a) == ViewOf(b));
  EXPECT_EQ(ViewOf(a).Hash(), ViewOf(b).Hash());
}

// ---------------------------------------------------------------------
// Pipeline equivalence: latemat == optimized == canonical.
// ---------------------------------------------------------------------

TEST(LateMat, MatchesCanonicalOnPaperQueries) {
  PaperDatabase fixture;
  for (const char* text : {
           "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250000",
           "retrieve (ASSIGNMENT.E_NAME)",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
           "and PROJECT.BUDGET > 300000",
           "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
           "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
           "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.SALARY >= PROJECT.BUDGET",  // cartesian + filter
           "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Nowhere",
       }) {
    ConjunctiveQuery query = fixture.Query(text);
    auto canonical = EvaluateCanonical(query, fixture.db());
    auto latemat = EvaluateLateMaterialized(query, fixture.db());
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(latemat.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*latemat)) << text;
  }
}

class LateMatEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LateMatEquivalenceTest, MatchesCanonicalAndOptimized) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> val(0, 4);
  std::uniform_int_distribution<int> rows(0, 12);

  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "R",
                                    {{"A", ValueType::kInt64},
                                     {"B", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "S",
                                    {{"C", ValueType::kInt64},
                                     {"D", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema::Make("T", {{"E", ValueType::kInt64}})
                        .value())
                  .ok());
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("R", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("S", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("T", Tuple({Value::Int64(val(rng))})).ok());
  }

  const char* queries[] = {
      "retrieve (R.A, S.D) where R.B = S.C",
      "retrieve (R.A) where R.B = S.C and S.D = T.E",
      "retrieve (R.A, R.B)",
      "retrieve (R.A, S.C) where R.A >= 2 and S.C < 3",
      "retrieve (R.A, S.D) where R.B != S.C",  // no equality: cartesian
      "retrieve (R:1.A, R:2.B) where R:1.B = R:2.A and R:1.A <= 2",
      "retrieve (R.A, S.C, T.E) where R.A = S.C and S.C = T.E",
      "retrieve (R.B) where R.A = 3",
      "retrieve (R.A, S.D) where R.B = S.C and S.D = 2 and R.A = 1",
      // Two equality keys between the same pair of atoms: a compound
      // join key.
      "retrieve (R.A, S.D) where R.A = S.C and R.B = S.D",
  };
  for (const char* text : queries) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto query = ConjunctiveQuery::FromRetrieve(
        db.schema(), std::get<RetrieveStmt>(*stmt));
    ASSERT_TRUE(query.ok()) << text;
    auto canonical = EvaluateCanonical(*query, db);
    auto optimized = EvaluateOptimized(*query, db);
    auto latemat = EvaluateLateMaterialized(*query, db);
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(optimized.ok()) << text;
    ASSERT_TRUE(latemat.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*latemat))
        << text << "\ncanonical: " << canonical->size()
        << " rows, latemat: " << latemat->size() << " rows";
    EXPECT_TRUE(optimized->SameTuples(*latemat)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LateMatEquivalenceTest,
                         ::testing::Range(1, 11));

// Mixed-type join keys: the strict in-place key equality must agree with
// the strict Tuple-key equality the optimizer uses, including the
// Int64/Double distinction and NULLs in non-key columns.
TEST(LateMat, MixedTypeJoinKeysMatchOptimized) {
  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "L",
                                    {{"K", ValueType::kDouble},
                                     {"P", ValueType::kString}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "M",
                                    {{"K", ValueType::kDouble},
                                     {"Q", ValueType::kInt64}})
                                    .value())
                  .ok());
  auto ins = [&](const char* rel, Value k, Value v) {
    ASSERT_TRUE(db.Insert(rel, Tuple({std::move(k), std::move(v)})).ok());
  };
  ins("L", Value::Double(5.0), Value::String("five"));
  ins("L", Value::Double(2.5), Value::String("half"));
  ins("L", Value::Double(-0.0), Value::String("zero"));
  ins("M", Value::Double(5.0), Value::Int64(1));
  ins("M", Value::Double(2.5), Value::Int64(2));
  ins("M", Value::Double(0.0), Value::Int64(3));

  auto stmt = ParseStatement("retrieve (L.P, M.Q) where L.K = M.K");
  ASSERT_TRUE(stmt.ok());
  auto query = ConjunctiveQuery::FromRetrieve(db.schema(),
                                              std::get<RetrieveStmt>(*stmt));
  ASSERT_TRUE(query.ok());
  auto optimized = EvaluateOptimized(*query, db);
  auto latemat = EvaluateLateMaterialized(*query, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(latemat.ok());
  EXPECT_TRUE(optimized->SameTuples(*latemat));
}

// ---------------------------------------------------------------------
// rows_scanned contract: "rows fetched from storage and examined", the
// same in every strategy.
// ---------------------------------------------------------------------

TEST(LateMat, RowsScannedContractFullScan) {
  PaperDatabase fixture;
  // No indexable atom: every strategy examines all 3 + 6 rows.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME");
  EvalStats canonical, optimized, latemat;
  ASSERT_TRUE(
      EvaluateCanonical(query, fixture.db(), "ANSWER", &canonical).ok());
  ASSERT_TRUE(
      EvaluateOptimized(query, fixture.db(), "ANSWER", &optimized).ok());
  ASSERT_TRUE(
      EvaluateLateMaterialized(query, fixture.db(), "ANSWER", &latemat).ok());
  EXPECT_EQ(canonical.rows_scanned, 9);
  EXPECT_EQ(optimized.rows_scanned, 9);
  EXPECT_EQ(latemat.rows_scanned, 9);
}

TEST(LateMat, RowsScannedContractIndexProbe) {
  PaperDatabase fixture;
  // Hash-index probe on the key: exactly Brown's 2 assignment rows are
  // fetched and examined, in both index-aware strategies.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (ASSIGNMENT.P_NO) where ASSIGNMENT.E_NAME = Brown");
  EvalStats optimized, latemat;
  ASSERT_TRUE(
      EvaluateOptimized(query, fixture.db(), "ANSWER", &optimized).ok());
  ASSERT_TRUE(
      EvaluateLateMaterialized(query, fixture.db(), "ANSWER", &latemat).ok());
  EXPECT_EQ(optimized.rows_scanned, 2);
  EXPECT_EQ(latemat.rows_scanned, 2);
}

TEST(LateMat, RowsScannedContractRangeScan) {
  PaperDatabase fixture;
  // Ordered-index range: only the single row above 300000 is yielded.
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 300000");
  EvalStats optimized, latemat;
  ASSERT_TRUE(
      EvaluateOptimized(query, fixture.db(), "ANSWER", &optimized).ok());
  ASSERT_TRUE(
      EvaluateLateMaterialized(query, fixture.db(), "ANSWER", &latemat).ok());
  EXPECT_EQ(optimized.rows_scanned, 1);
  EXPECT_EQ(latemat.rows_scanned, 1);
}

// ---------------------------------------------------------------------
// Late materialization observability: the pipeline materializes tuples
// only at the final projection and allocates no join-key tuples.
// ---------------------------------------------------------------------

TEST(LateMat, MaterializesOnlyFinalRows) {
  PaperDatabase fixture;
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER");
  EvalStats optimized, latemat;
  auto opt = EvaluateOptimized(query, fixture.db(), "ANSWER", &optimized);
  auto late =
      EvaluateLateMaterialized(query, fixture.db(), "ANSWER", &latemat);
  ASSERT_TRUE(opt.ok());
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(opt->SameTuples(*late));

  // Six joined rows survive to the projection; latemat materializes
  // exactly those, while the optimizer also copied per-atom inputs and
  // concatenated every intermediate join row.
  EXPECT_EQ(latemat.tuples_materialized, 6);
  EXPECT_GT(optimized.tuples_materialized, latemat.tuples_materialized);

  // One key tuple per build row and per probe row would have been
  // allocated at each of the two joins; the in-place hashing avoided all
  // of them (the exact count depends on the join order's input sizes).
  EXPECT_GT(latemat.join_key_allocs_avoided, 0);
  EXPECT_EQ(optimized.join_key_allocs_avoided, 0);
}

// ---------------------------------------------------------------------
// End-to-end: the authorizer delivers identical masked answers with the
// late-materialized plan on and off.
// ---------------------------------------------------------------------

TEST(LateMat, AuthorizedRetrievalIdenticalAcrossDataPlans) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  for (const char* text : {
           "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
           "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
           "where PROJECT.BUDGET >= 200000",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER",
       }) {
    for (const char* user : {"Brown", "Klein"}) {
      ConjunctiveQuery query = fixture.Query(text);
      AuthorizationOptions with, without;
      // Pin latemat-vs-optimized: the vectorized plan (default on) would
      // otherwise shadow both legs.
      with.use_vectorized_data_plan = false;
      without.use_vectorized_data_plan = false;
      with.use_latemat_data_plan = true;
      without.use_latemat_data_plan = false;
      auto a = authorizer.Retrieve(user, query, with);
      auto b = authorizer.Retrieve(user, query, without);
      ASSERT_TRUE(a.ok()) << text;
      ASSERT_TRUE(b.ok()) << text;
      EXPECT_EQ(a->denied, b->denied) << text;
      EXPECT_EQ(a->full_access, b->full_access) << text;
      EXPECT_TRUE(a->raw_answer.SameTuples(b->raw_answer)) << text;
      EXPECT_TRUE(a->answer.SameTuples(b->answer)) << text;
    }
  }
}

// The compiled per-row check must agree with the interpretive
// RowSatisfies on every mask tuple the paper scenarios produce.
TEST(LateMat, CompiledMaskAgreesWithRowSatisfies) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  for (const char* text : {
           "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
           "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
           "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
           "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
           "and ASSIGNMENT.P_NO = PROJECT.NUMBER",
       }) {
    for (const char* user : {"Brown", "Klein"}) {
      ConjunctiveQuery query = fixture.Query(text);
      auto mask = authorizer.DeriveMask(user, query);
      ASSERT_TRUE(mask.ok()) << text;
      auto answer = EvaluateLateMaterialized(query, fixture.db());
      ASSERT_TRUE(answer.ok()) << text;
      const CompiledMask compiled = CompiledMask::Compile(*mask);
      ASSERT_EQ(compiled.tuples.size(), mask->tuples().size());
      for (const Tuple& row : answer->rows()) {
        for (size_t t = 0; t < compiled.tuples.size(); ++t) {
          EXPECT_EQ(compiled.tuples[t].Satisfies(row),
                    Authorizer::RowSatisfies(mask->tuples()[t], row))
              << text << " user=" << user << " tuple=" << t
              << " row=" << row.ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace viewauth
