// Additional operator coverage: base-mode (Definition 2) selections on
// column pairs, the ClearImpliedRestrictions post-pass, and subsumption
// edge cases not covered by the main operator suite.

#include <gtest/gtest.h>

#include "meta/ops.h"

namespace viewauth {
namespace {

std::vector<Attribute> IntColumns(std::initializer_list<const char*> names) {
  std::vector<Attribute> out;
  for (const char* name : names) {
    out.push_back(Attribute{name, ValueType::kInt64});
  }
  return out;
}

MetaOpOptions Base() {
  MetaOpOptions options;
  options.padding = false;
  options.four_case = false;
  return options;
}

MetaRelation TwoBlankColumns(bool starred = true) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple t;
  t.cells().push_back(MetaCell::Blank(starred));
  t.cells().push_back(MetaCell::Blank(starred));
  rel.Add(t);
  return rel;
}

TEST(MetaSelectBaseMode, BlankBlankEqualityMaterializesSharedVariable) {
  MetaRelation rel = TwoBlankColumns();
  VarAllocator alloc;
  MetaRelation out = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kEq, 1), Base(),
      &alloc);
  ASSERT_EQ(out.size(), 1);
  const MetaTuple& t = out.tuples()[0];
  ASSERT_EQ(t.cells()[0].kind, CellKind::kVar);
  ASSERT_EQ(t.cells()[1].kind, CellKind::kVar);
  EXPECT_EQ(t.cells()[0].var, t.cells()[1].var);  // A = B via one variable
}

TEST(MetaSelectBaseMode, BlankBlankOrderMaterializesConstraint) {
  MetaRelation rel = TwoBlankColumns();
  VarAllocator alloc;
  MetaRelation out = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kLt, 1), Base(),
      &alloc);
  ASSERT_EQ(out.size(), 1);
  const MetaTuple& t = out.tuples()[0];
  ASSERT_EQ(t.cells()[0].kind, CellKind::kVar);
  ASSERT_EQ(t.cells()[1].kind, CellKind::kVar);
  EXPECT_NE(t.cells()[0].var, t.cells()[1].var);
  EXPECT_EQ(t.constraints().Implies(ConstraintAtom::TermTerm(
                t.cells()[0].var, Comparator::kLt, t.cells()[1].var)),
            Truth::kTrue);
}

TEST(MetaSelectBaseMode, BlankAgainstConstantMirrors) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple t;
  t.cells().push_back(MetaCell::Blank(true));
  t.cells().push_back(MetaCell::Const(Value::Int64(7), true));
  rel.Add(t);
  VarAllocator alloc;
  // Equality mirrors the constant into the blank side.
  MetaRelation eq = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kEq, 1), Base(),
      &alloc);
  ASSERT_EQ(eq.size(), 1);
  EXPECT_EQ(eq.tuples()[0].cells()[0].kind, CellKind::kConst);
  EXPECT_EQ(eq.tuples()[0].cells()[0].constant, Value::Int64(7));
  // Order materializes a variable bounded by the constant.
  MetaRelation lt = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kLt, 1), Base(),
      &alloc);
  ASSERT_EQ(lt.size(), 1);
  ASSERT_EQ(lt.tuples()[0].cells()[0].kind, CellKind::kVar);
  EXPECT_EQ(lt.tuples()[0].constraints().Implies(
                ConstraintAtom::TermConst(lt.tuples()[0].cells()[0].var,
                                          Comparator::kLt,
                                          Value::Int64(7))),
            Truth::kTrue);
  // The reversed orientation binds correctly too (constant < blank).
  MetaRelation gt = MetaSelect(
      rel, MetaSelection::ColumnColumn(1, Comparator::kLt, 0), Base(),
      &alloc);
  ASSERT_EQ(gt.size(), 1);
  EXPECT_EQ(gt.tuples()[0].constraints().Implies(
                ConstraintAtom::TermConst(gt.tuples()[0].cells()[0].var,
                                          Comparator::kGt,
                                          Value::Int64(7))),
            Truth::kTrue);
}

TEST(MetaSelectBaseMode, UnprojectedCellsAlwaysDiscard) {
  // Base mode is Definition 2 verbatim: no retain-when-implied escape.
  MetaRelation rel(IntColumns({"A"}));
  MetaTuple t;
  t.cells().push_back(MetaCell::Const(Value::Int64(5), /*starred=*/false));
  rel.Add(t);
  VarAllocator alloc;
  EXPECT_TRUE(MetaSelect(rel,
                         MetaSelection::ColumnConst(0, Comparator::kEq,
                                                    Value::Int64(5)),
                         Base(), &alloc)
                  .empty());
}

TEST(MetaSelect, DegenerateSameColumnPredicate) {
  MetaRelation rel = TwoBlankColumns(/*starred=*/false);
  VarAllocator alloc;
  MetaOpOptions refined;
  // A = A keeps everything (even unprojected); A != A keeps nothing.
  EXPECT_EQ(MetaSelect(rel,
                       MetaSelection::ColumnColumn(0, Comparator::kEq, 0),
                       refined, &alloc)
                .size(),
            1);
  EXPECT_TRUE(MetaSelect(rel,
                         MetaSelection::ColumnColumn(0, Comparator::kNe, 0),
                         refined, &alloc)
                  .empty());
}

TEST(ClearImpliedRestrictions, ClearsConstCellsPinnedByQuery) {
  MetaRelation rel(
      {Attribute{"S", ValueType::kString}, Attribute{"N", ValueType::kString}});
  MetaTuple t;
  t.cells().push_back(MetaCell::Const(Value::String("Acme"), true));
  t.cells().push_back(MetaCell::Blank(true));
  rel.Add(t);
  ConstraintSet lambda;
  lambda.DeclareTermType(-1, ValueType::kString);
  lambda.AddTermConst(-1, Comparator::kEq, Value::String("Acme"));
  ClearImpliedRestrictions(&rel, lambda,
                           [](int col) -> TermId { return -(col + 1); });
  EXPECT_TRUE(rel.tuples()[0].cells()[0].is_blank());
  EXPECT_TRUE(rel.tuples()[0].cells()[0].projected);
}

TEST(ClearImpliedRestrictions, SharedVariableClearsOnlyWhenEqualityImplied) {
  auto make = [] {
    MetaRelation rel(
        {Attribute{"A", ValueType::kInt64}, Attribute{"B", ValueType::kInt64}});
    MetaTuple t;
    t.cells().push_back(MetaCell::Var(1, true));
    t.cells().push_back(MetaCell::Var(1, true));
    t.var_atoms()[1] = {1};
    t.origin_atoms().insert(1);
    rel.Add(t);
    return rel;
  };
  auto column_term = [](int col) -> TermId { return -(col + 1); };

  // Query equates the columns: the join variable clears.
  MetaRelation cleared = make();
  ConstraintSet eq;
  eq.AddTermTerm(-1, Comparator::kEq, -2);
  ClearImpliedRestrictions(&cleared, eq, column_term);
  EXPECT_TRUE(cleared.tuples()[0].cells()[0].is_blank());

  // Query says nothing: the variable must stay.
  MetaRelation kept = make();
  ConstraintSet empty;
  ClearImpliedRestrictions(&kept, empty, column_term);
  EXPECT_EQ(kept.tuples()[0].cells()[0].kind, CellKind::kVar);
}

TEST(RemoveSubsumed, DifferentSelectionsDoNotSubsume) {
  MetaRelation rel({Attribute{"A", ValueType::kInt64}});
  MetaTuple narrow;
  narrow.cells().push_back(MetaCell::Var(1, true));
  narrow.constraints().AddTermConst(1, Comparator::kGe, Value::Int64(5));
  rel.Add(narrow);
  MetaTuple wide;
  wide.cells().push_back(MetaCell::Var(2, true));
  wide.constraints().AddTermConst(2, Comparator::kGe, Value::Int64(3));
  rel.Add(wide);
  // Conservative subsumption keeps both (implication between variable
  // constraints is not folded into rule 1).
  EXPECT_EQ(RemoveSubsumed(rel).size(), 2);
}

}  // namespace
}  // namespace viewauth
