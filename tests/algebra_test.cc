// Unit and property tests for the relational algebra evaluators: the
// canonical products->selections->projections strategy and the optimized
// (pushdown + hash join) strategy must agree on every query.

#include <gtest/gtest.h>

#include <random>

#include "algebra/evaluator.h"
#include "algebra/optimizer.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

ConjunctiveQuery Q(PaperDatabase& fixture, const std::string& text) {
  return fixture.Query(text);
}

TEST(Evaluator, SingleRelationSelection) {
  PaperDatabase fixture;
  ConjunctiveQuery query =
      Q(fixture,
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250000");
  auto result = EvaluateCanonical(query, fixture.db());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2);
  EXPECT_TRUE(result->Contains(Tuple({Value::String("bq-45")})));
  EXPECT_TRUE(result->Contains(Tuple({Value::String("sv-72")})));
}

TEST(Evaluator, ProjectionDeduplicates) {
  PaperDatabase fixture;
  // Six assignments project onto three distinct employees.
  ConjunctiveQuery query = Q(fixture, "retrieve (ASSIGNMENT.E_NAME)");
  auto result = EvaluateCanonical(query, fixture.db());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3);
}

TEST(Evaluator, ThreeWayJoin) {
  PaperDatabase fixture;
  ConjunctiveQuery query = Q(
      fixture,
      "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");
  auto result = EvaluateCanonical(query, fixture.db());
  ASSERT_TRUE(result.ok());
  // sv-72 (450k): Jones and Brown.
  EXPECT_EQ(result->size(), 2);
  EXPECT_TRUE(result->Contains(
      Tuple({Value::String("Jones"), Value::String("sv-72")})));
}

TEST(Evaluator, SelfJoinQuery) {
  PaperDatabase fixture;
  ConjunctiveQuery query =
      Q(fixture,
        "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
        "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  auto result = EvaluateCanonical(query, fixture.db());
  ASSERT_TRUE(result.ok());
  // All titles are unique: each employee pairs only with itself.
  EXPECT_EQ(result->size(), 3);
}

TEST(Evaluator, StatsAreCounted) {
  PaperDatabase fixture;
  ConjunctiveQuery query = Q(
      fixture,
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME");
  EvalStats canonical_stats;
  auto canonical =
      EvaluateCanonical(query, fixture.db(), "ANSWER", &canonical_stats);
  ASSERT_TRUE(canonical.ok());
  EvalStats optimized_stats;
  auto optimized =
      EvaluateOptimized(query, fixture.db(), "ANSWER", &optimized_stats);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(canonical_stats.rows_scanned, 9);  // 3 employees + 6 assignments
  EXPECT_EQ(optimized_stats.rows_scanned, 9);
  // The hash join produces only matching pairs; the product builds all 18.
  EXPECT_GT(canonical_stats.intermediate_rows,
            optimized_stats.intermediate_rows);
  EXPECT_EQ(canonical_stats.output_rows, optimized_stats.output_rows);
}

TEST(Plan, CanonicalShapeAndPrinting) {
  PaperDatabase fixture;
  ConjunctiveQuery query = Q(
      fixture,
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME");
  std::unique_ptr<PlanNode> plan = BuildCanonicalPlan(query);
  ASSERT_EQ(plan->kind, PlanNodeKind::kProjection);
  ASSERT_EQ(plan->child->kind, PlanNodeKind::kSelection);
  ASSERT_EQ(plan->child->child->kind, PlanNodeKind::kProduct);
  std::string printed = plan->ToString();
  EXPECT_NE(printed.find("Projection"), std::string::npos);
  EXPECT_NE(printed.find("Scan(EMPLOYEE)"), std::string::npos);
}

TEST(Plan, SelectionOmittedWhenTrivial) {
  PaperDatabase fixture;
  ConjunctiveQuery query = Q(fixture, "retrieve (EMPLOYEE.NAME)");
  std::unique_ptr<PlanNode> plan = BuildCanonicalPlan(query);
  ASSERT_EQ(plan->kind, PlanNodeKind::kProjection);
  EXPECT_EQ(plan->child->kind, PlanNodeKind::kScan);
}

TEST(Evaluator, IndexedEqualityProbeMatchesScan) {
  PaperDatabase fixture;
  // String-typed equality: the optimizer probes the lazy hash index.
  for (const char* text :
       {"retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme",
        "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
        "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
        "and PROJECT.SPONSOR = Acme",
        "retrieve (EMPLOYEE.SALARY) where EMPLOYEE.SALARY = 26000",
        // Missing key: empty either way.
        "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Nowhere"}) {
    ConjunctiveQuery query = fixture.Query(text);
    auto canonical = EvaluateCanonical(query, fixture.db());
    auto optimized = EvaluateOptimized(query, fixture.db());
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(optimized.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*optimized)) << text;
  }
}

TEST(Evaluator, RangeScanMatchesCanonical) {
  PaperDatabase fixture;
  for (const char* text :
       {"retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250000",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 300000",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET <= 300000",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET < 150000",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 200000 "
        "and PROJECT.BUDGET <= 400000",
        "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME >= Br "
        "and EMPLOYEE.NAME < K"}) {
    ConjunctiveQuery query = fixture.Query(text);
    auto canonical = EvaluateCanonical(query, fixture.db());
    auto optimized = EvaluateOptimized(query, fixture.db());
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(optimized.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*optimized)) << text;
  }
}

TEST(Evaluator, RangeScanReducesScannedRows) {
  PaperDatabase fixture;
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 300000");
  EvalStats stats;
  auto result = EvaluateOptimized(query, fixture.db(), "ANSWER", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1);  // sv-72 (450k)
  EXPECT_EQ(stats.rows_scanned, 1);
}

TEST(Evaluator, IndexProbeReducesScannedRows) {
  PaperDatabase fixture;
  ConjunctiveQuery query = fixture.Query(
      "retrieve (ASSIGNMENT.P_NO) where ASSIGNMENT.E_NAME = Brown");
  EvalStats stats;
  auto result = EvaluateOptimized(query, fixture.db(), "ANSWER", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2);
  // Only Brown's two assignment rows are touched, not all six.
  EXPECT_EQ(stats.rows_scanned, 2);
}

// ---------------------------------------------------------------------
// Property: optimized == canonical on randomized databases and queries
// (the correctness precondition for Figure 2's commutative diagram).
// ---------------------------------------------------------------------

class PlanEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanEquivalenceTest, OptimizedMatchesCanonical) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> val(0, 4);
  std::uniform_int_distribution<int> rows(0, 12);

  // Random database: R(A,B), S(C,D), T(E) over small integer domains.
  DatabaseInstance db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "R",
                                    {{"A", ValueType::kInt64},
                                     {"B", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema::Make(
                                    "S",
                                    {{"C", ValueType::kInt64},
                                     {"D", ValueType::kInt64}})
                                    .value())
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema::Make("T", {{"E", ValueType::kInt64}})
                        .value())
                  .ok());
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("R", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("S", Tuple({Value::Int64(val(rng)),
                                      Value::Int64(val(rng))}))
                    .ok());
  }
  for (int i = rows(rng); i > 0; --i) {
    ASSERT_TRUE(db.Insert("T", Tuple({Value::Int64(val(rng))})).ok());
  }

  const char* queries[] = {
      "retrieve (R.A, S.D) where R.B = S.C",
      "retrieve (R.A) where R.B = S.C and S.D = T.E",
      "retrieve (R.A, R.B)",
      "retrieve (R.A, S.C) where R.A >= 2 and S.C < 3",
      "retrieve (R.A, S.D) where R.B != S.C",  // no equality: cartesian
      "retrieve (R:1.A, R:2.B) where R:1.B = R:2.A and R:1.A <= 2",
      "retrieve (R.A, S.C, T.E) where R.A = S.C and S.C = T.E",
      // Equality-with-constant locals exercise the index-probe path.
      "retrieve (R.B) where R.A = 3",
      "retrieve (R.A, S.D) where R.B = S.C and S.D = 2 and R.A = 1",
  };
  for (const char* text : queries) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto query = ConjunctiveQuery::FromRetrieve(
        db.schema(), std::get<RetrieveStmt>(*stmt));
    ASSERT_TRUE(query.ok()) << text;
    auto canonical = EvaluateCanonical(*query, db);
    auto optimized = EvaluateOptimized(*query, db);
    ASSERT_TRUE(canonical.ok()) << text;
    ASSERT_TRUE(optimized.ok()) << text;
    EXPECT_TRUE(canonical->SameTuples(*optimized))
        << text << "\ncanonical: " << canonical->size()
        << " rows, optimized: " << optimized->size() << " rows";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace viewauth
