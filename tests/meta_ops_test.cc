// Unit tests for the extended meta-relation operators (paper Section 4),
// including a parameterized sweep over the paper's own four-case
// selection scenario (budgets 300k-600k versus four query ranges).

#include "meta/ops.h"

#include <gtest/gtest.h>

#include "meta/meta_tuple.h"

namespace viewauth {
namespace {

std::vector<Attribute> IntColumns(std::initializer_list<const char*> names) {
  std::vector<Attribute> out;
  for (const char* name : names) {
    out.push_back(Attribute{name, ValueType::kInt64});
  }
  return out;
}

// A meta-relation over one int column, holding one tuple whose variable
// is constrained to [lo, hi] — the paper's "projects whose budgets are
// between $300,000 and $600,000".
MetaRelation RangeView(int64_t lo, int64_t hi) {
  MetaRelation rel(IntColumns({"BUDGET"}));
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Var(1, /*starred=*/true));
  tuple.constraints().DeclareTermType(1, ValueType::kInt64);
  tuple.constraints().AddTermConst(1, Comparator::kGe, Value::Int64(lo));
  tuple.constraints().AddTermConst(1, Comparator::kLe, Value::Int64(hi));
  tuple.views().insert("V");
  tuple.var_atoms()[1] = {1};
  tuple.origin_atoms().insert(1);
  rel.Add(std::move(tuple));
  return rel;
}

MetaOpOptions Refined() { return MetaOpOptions{}; }
MetaOpOptions Base() {
  MetaOpOptions options;
  options.padding = false;
  options.four_case = false;
  return options;
}

// --- The paper's four selection cases (Section 4.2). -------------------

struct FourCaseParam {
  const char* label;
  // Query range [query_lo, query_hi] applied as two selections.
  int64_t query_lo;
  int64_t query_hi;
  // Expected state of the surviving tuple; empty label "discard" means
  // the tuple must vanish.
  bool survives;
  bool cleared;  // the budget cell became blank
  // Expected residual bounds when not cleared.
  int64_t expect_lo;
  int64_t expect_hi;
};

class FourCaseTest : public ::testing::TestWithParam<FourCaseParam> {};

TEST_P(FourCaseTest, PaperScenario) {
  const FourCaseParam& param = GetParam();
  MetaRelation view = RangeView(300000, 600000);
  VarAllocator alloc;
  MetaRelation after = MetaSelect(
      view,
      MetaSelection::ColumnConst(0, Comparator::kGe,
                                 Value::Int64(param.query_lo)),
      Refined(), &alloc);
  after = MetaSelect(after,
                     MetaSelection::ColumnConst(
                         0, Comparator::kLe, Value::Int64(param.query_hi)),
                     Refined(), &alloc);
  // The authorizer's four-case post-pass: the conjunction of both query
  // predicates may imply the tuple's restriction even when neither does
  // alone.
  ConstraintSet lambda;
  lambda.DeclareTermType(-1, ValueType::kInt64);
  lambda.AddTermConst(-1, Comparator::kGe, Value::Int64(param.query_lo));
  lambda.AddTermConst(-1, Comparator::kLe, Value::Int64(param.query_hi));
  ClearImpliedRestrictions(&after, lambda,
                           [](int col) -> TermId { return -(col + 1); });
  if (!param.survives) {
    EXPECT_TRUE(after.empty()) << param.label;
    return;
  }
  ASSERT_EQ(after.size(), 1) << param.label;
  const MetaTuple& tuple = after.tuples()[0];
  if (param.cleared) {
    EXPECT_TRUE(tuple.cells()[0].is_blank()) << param.label;
    EXPECT_TRUE(tuple.cells()[0].projected);
    EXPECT_EQ(tuple.constraints().atom_count(), 0) << param.label;
    return;
  }
  ASSERT_EQ(tuple.cells()[0].kind, CellKind::kVar) << param.label;
  const ConstraintSet& constraints = tuple.constraints();
  TermId var = tuple.cells()[0].var;
  EXPECT_EQ(constraints.Implies(ConstraintAtom::TermConst(
                var, Comparator::kGe, Value::Int64(param.expect_lo))),
            Truth::kTrue)
      << param.label;
  EXPECT_EQ(constraints.Implies(ConstraintAtom::TermConst(
                var, Comparator::kLe, Value::Int64(param.expect_hi))),
            Truth::kTrue)
      << param.label;
  EXPECT_EQ(constraints.Implies(ConstraintAtom::TermConst(
                var, Comparator::kGe,
                Value::Int64(param.expect_lo + 1))),
            Truth::kUnknown)
      << param.label << " (lower bound too tight)";
}

INSTANTIATE_TEST_SUITE_P(
    PaperRanges, FourCaseTest,
    ::testing::Values(
        // (1) 200k-400k overlaps: modified to 300k-400k.
        FourCaseParam{"overlap", 200000, 400000, true, false, 300000,
                      400000},
        // (2) 200k-700k contains the view: retained as 300k-600k.
        FourCaseParam{"contained", 200000, 700000, true, false, 300000,
                      600000},
        // (3) 400k-500k inside the view: cleared entirely.
        FourCaseParam{"clears", 400000, 500000, true, true, 0, 0},
        // (4) under 300k: contradictory, discarded. (0..299,999)
        FourCaseParam{"discard", 0, 299999, false, false, 0, 0}),
    [](const ::testing::TestParamInfo<FourCaseParam>& info) {
      return info.param.label;
    });

// --- Definition 2 basics. ----------------------------------------------

TEST(MetaSelect, RequiresProjectedCell) {
  MetaRelation rel(IntColumns({"A"}));
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Blank(/*starred=*/false));
  rel.Add(tuple);
  VarAllocator alloc;
  MetaRelation after =
      MetaSelect(rel, MetaSelection::ColumnConst(0, Comparator::kGe,
                                                 Value::Int64(5)),
                 Refined(), &alloc);
  EXPECT_TRUE(after.empty());
}

TEST(MetaSelect, UnprojectedConstantRetainedWhenImplied) {
  MetaRelation rel(
      {Attribute{"WARD", ValueType::kString},
       Attribute{"NAME", ValueType::kString}});
  MetaTuple tuple;
  tuple.cells().push_back(
      MetaCell::Const(Value::String("cardiology"), /*starred=*/false));
  tuple.cells().push_back(MetaCell::Blank(/*starred=*/true));
  rel.Add(tuple);
  VarAllocator alloc;
  // Equivalent predicate: retained AND cleared (survives projections).
  MetaRelation same =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kEq,
                                            Value::String("cardiology")),
                 Refined(), &alloc);
  ASSERT_EQ(same.size(), 1);
  EXPECT_TRUE(same.tuples()[0].cells()[0].is_blank());
  EXPECT_FALSE(same.tuples()[0].cells()[0].projected);
  // Conflicting predicate: discarded.
  MetaRelation other =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kEq,
                                            Value::String("oncology")),
                 Refined(), &alloc);
  EXPECT_TRUE(other.empty());
  // In base mode even the equivalent predicate discards (Definition 2).
  MetaRelation base =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kEq,
                                            Value::String("cardiology")),
                 Base(), &alloc);
  EXPECT_TRUE(base.empty());
}

TEST(MetaSelect, ConstCellAgainstConstant) {
  MetaRelation rel({Attribute{"SPONSOR", ValueType::kString}});
  MetaTuple tuple;
  tuple.cells().push_back(
      MetaCell::Const(Value::String("Acme"), /*starred=*/true));
  rel.Add(tuple);
  VarAllocator alloc;
  // Same constant with equality: cleared (paper: lambda implies mu).
  MetaRelation cleared =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kEq,
                                            Value::String("Acme")),
                 Refined(), &alloc);
  ASSERT_EQ(cleared.size(), 1);
  EXPECT_TRUE(cleared.tuples()[0].cells()[0].is_blank());
  EXPECT_TRUE(cleared.tuples()[0].cells()[0].projected);
  // Implied inequality: retained unmodified.
  MetaRelation kept =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kLt,
                                            Value::String("Apex")),
                 Refined(), &alloc);
  ASSERT_EQ(kept.size(), 1);
  EXPECT_EQ(kept.tuples()[0].cells()[0].kind, CellKind::kConst);
  // Contradiction: discarded.
  MetaRelation dropped =
      MetaSelect(rel,
                 MetaSelection::ColumnConst(0, Comparator::kEq,
                                            Value::String("Apex")),
                 Refined(), &alloc);
  EXPECT_TRUE(dropped.empty());
}

TEST(MetaSelect, BaseModeConjoinsOntoBlank) {
  MetaRelation rel(IntColumns({"A"}));
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Blank(/*starred=*/true));
  rel.Add(tuple);
  VarAllocator alloc;
  MetaRelation eq = MetaSelect(
      rel, MetaSelection::ColumnConst(0, Comparator::kEq, Value::Int64(7)),
      Base(), &alloc);
  ASSERT_EQ(eq.size(), 1);
  EXPECT_EQ(eq.tuples()[0].cells()[0].kind, CellKind::kConst);
  EXPECT_EQ(eq.tuples()[0].cells()[0].constant, Value::Int64(7));

  MetaRelation range = MetaSelect(
      rel, MetaSelection::ColumnConst(0, Comparator::kGe, Value::Int64(7)),
      Base(), &alloc);
  ASSERT_EQ(range.size(), 1);
  ASSERT_EQ(range.tuples()[0].cells()[0].kind, CellKind::kVar);
  EXPECT_EQ(range.tuples()[0].constraints().Implies(
                ConstraintAtom::TermConst(range.tuples()[0].cells()[0].var,
                                          Comparator::kGe, Value::Int64(7))),
            Truth::kTrue);
}

TEST(MetaSelect, ColumnColumnEqualityOnSharedVariableClears) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Var(3, /*starred=*/true));
  tuple.cells().push_back(MetaCell::Var(3, /*starred=*/true));
  tuple.var_atoms()[3] = {1};
  tuple.origin_atoms().insert(1);
  rel.Add(tuple);
  VarAllocator alloc;
  MetaRelation after = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kEq, 1), Refined(),
      &alloc);
  ASSERT_GE(after.size(), 1);
  bool found_cleared = false;
  for (const MetaTuple& t : after.tuples()) {
    if (t.cells()[0].is_blank() && t.cells()[1].is_blank()) {
      found_cleared = true;
      EXPECT_TRUE(t.cells()[0].projected);
    }
  }
  EXPECT_TRUE(found_cleared);
}

TEST(MetaSelect, ColumnColumnContradictionDiscards) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Var(3, /*starred=*/true));
  tuple.cells().push_back(MetaCell::Var(3, /*starred=*/true));
  rel.Add(tuple);
  VarAllocator alloc;
  EXPECT_TRUE(MetaSelect(rel,
                         MetaSelection::ColumnColumn(0, Comparator::kLt, 1),
                         Refined(), &alloc)
                  .empty());
  EXPECT_TRUE(MetaSelect(rel,
                         MetaSelection::ColumnColumn(0, Comparator::kNe, 1),
                         Refined(), &alloc)
                  .empty());
  EXPECT_EQ(MetaSelect(rel,
                       MetaSelection::ColumnColumn(0, Comparator::kLe, 1),
                       Refined(), &alloc)
                .size(),
            1);
}

TEST(MetaSelect, EqualityVariantsSurviveEitherProjection) {
  // Cells (Const sales*, Const sales*) with lambda: col0 = col1. Either
  // column may later be projected away; a variant must survive both.
  MetaRelation rel({Attribute{"DEPT", ValueType::kString},
                    Attribute{"DNAME", ValueType::kString}});
  MetaTuple tuple;
  tuple.cells().push_back(
      MetaCell::Const(Value::String("sales"), /*starred=*/true));
  tuple.cells().push_back(
      MetaCell::Const(Value::String("sales"), /*starred=*/true));
  rel.Add(tuple);
  VarAllocator alloc;
  MetaRelation after = MetaSelect(
      rel, MetaSelection::ColumnColumn(0, Comparator::kEq, 1), Refined(),
      &alloc);
  EXPECT_GE(after.size(), 3);
  EXPECT_FALSE(MetaProject(after, {0}).empty());
  EXPECT_FALSE(MetaProject(after, {1}).empty());
}

// --- Product and padding. ----------------------------------------------

TEST(MetaProduct, ConcatenatesAndPads) {
  MetaRelation left(IntColumns({"A"}));
  MetaTuple l;
  l.cells().push_back(MetaCell::Const(Value::Int64(1), true));
  l.views().insert("V1");
  left.Add(l);
  MetaRelation right(IntColumns({"B"}));
  MetaTuple r;
  r.cells().push_back(MetaCell::Const(Value::Int64(2), true));
  r.views().insert("V2");
  right.Add(r);

  MetaRelation padded = MetaProduct(left, right, Refined());
  EXPECT_EQ(padded.size(), 3);  // pair + two padded
  MetaRelation bare = MetaProduct(left, right, Base());
  ASSERT_EQ(bare.size(), 1);
  EXPECT_EQ(bare.tuples()[0].arity(), 2);
  EXPECT_EQ(bare.tuples()[0].views().size(), 2u);
}

TEST(MetaProduct, PaddingPreservesFactorViewsThroughProjection) {
  // The paper's motivating case: Q = pi_R(R x S) is equivalent to R, so
  // R's subviews must survive. Without padding they are lost when the
  // S-side tuple restricts S's attributes.
  MetaRelation left(IntColumns({"A"}));
  MetaTuple l;
  l.cells().push_back(MetaCell::Blank(/*starred=*/true));
  l.views().insert("VR");
  left.Add(l);
  MetaRelation right(IntColumns({"B"}));
  MetaTuple r;
  r.cells().push_back(MetaCell::Const(Value::Int64(9), true));
  r.views().insert("VS");
  right.Add(r);

  MetaRelation with_padding =
      MetaProject(MetaProduct(left, right, Refined()), {0});
  bool vr_survives = false;
  for (const MetaTuple& t : with_padding.tuples()) {
    if (t.views().contains("VR") && t.cells()[0].projected) {
      vr_survives = true;
    }
  }
  EXPECT_TRUE(vr_survives);

  MetaRelation without_padding =
      MetaProject(MetaProduct(left, right, Base()), {0});
  EXPECT_TRUE(without_padding.empty());
}

// --- Projection (Definition 3). ----------------------------------------

TEST(MetaProject, DropsTuplesRestrictingRemovedColumns) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple restricted;
  restricted.cells().push_back(MetaCell::Blank(true));
  restricted.cells().push_back(MetaCell::Const(Value::Int64(5), false));
  rel.Add(restricted);
  MetaTuple free;
  free.cells().push_back(MetaCell::Blank(true));
  free.cells().push_back(MetaCell::Blank(false));
  rel.Add(free);

  MetaRelation projected = MetaProject(rel, {0});
  ASSERT_EQ(projected.size(), 1);
  EXPECT_TRUE(projected.tuples()[0].cells()[0].is_blank());
  // Keeping both columns keeps both tuples, reordered.
  MetaRelation reordered = MetaProject(rel, {1, 0});
  EXPECT_EQ(reordered.size(), 2);
  EXPECT_EQ(reordered.columns()[0].name, "B");
}

// --- Dangling pruning, duplicates, subsumption. -------------------------

TEST(PruneDangling, RemovesPartialViewCombinations) {
  // A view with two atoms sharing x: a lone tuple dangles, the pair does
  // not.
  MetaTuple lone;
  lone.cells().push_back(MetaCell::Var(1, true));
  lone.var_atoms()[1] = {10, 11};
  lone.origin_atoms().insert(10);

  MetaTuple pair = lone;
  pair.cells().push_back(MetaCell::Var(1, true));
  pair.origin_atoms().insert(11);

  MetaRelation rel(IntColumns({"A"}));
  rel.Add(lone);
  MetaRelation rel2(IntColumns({"A", "B"}));
  rel2.Add(pair);

  EXPECT_TRUE(PruneDanglingTuples(rel).empty());
  EXPECT_EQ(PruneDanglingTuples(rel2).size(), 1);
}

TEST(RemoveDuplicates, CollapsesAlphaEquivalentTuples) {
  MetaRelation rel(IntColumns({"A"}));
  for (VarId var : {5, 9}) {
    MetaTuple t;
    t.cells().push_back(MetaCell::Var(var, true));
    t.constraints().AddTermConst(var, Comparator::kGe, Value::Int64(3));
    t.var_atoms()[var] = {1};
    t.origin_atoms().insert(1);
    rel.Add(t);
  }
  EXPECT_EQ(RemoveDuplicates(rel).size(), 1);
}

TEST(RemoveDuplicates, KeepsTuplesWithDifferentProvenance) {
  MetaRelation rel(IntColumns({"A"}));
  for (AtomId atom : {1, 2}) {
    MetaTuple t;
    t.cells().push_back(MetaCell::Var(7, true));
    t.var_atoms()[7] = {1, 2};
    t.origin_atoms().insert(atom);
    rel.Add(t);
  }
  // Same cells, but covering different atoms: both must survive (one may
  // dangle in a later product where the other does not).
  EXPECT_EQ(RemoveDuplicates(rel).size(), 2);
}

TEST(RemoveSubsumed, ProjectionSubsetWithSameSelection) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple wide;
  wide.cells().push_back(MetaCell::Blank(true));
  wide.cells().push_back(MetaCell::Blank(true));
  rel.Add(wide);
  MetaTuple narrow;
  narrow.cells().push_back(MetaCell::Blank(true));
  narrow.cells().push_back(MetaCell::Blank(false));
  rel.Add(narrow);
  MetaRelation out = RemoveSubsumed(rel);
  ASSERT_EQ(out.size(), 1);
  EXPECT_TRUE(out.tuples()[0].cells()[1].projected);
}

TEST(RemoveSubsumed, UnrestrictedTupleAbsorbsRestrictedOnes) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple full;
  full.cells().push_back(MetaCell::Blank(true));
  full.cells().push_back(MetaCell::Blank(true));
  rel.Add(full);
  MetaTuple conditional;
  conditional.cells().push_back(MetaCell::Const(Value::Int64(3), true));
  conditional.cells().push_back(MetaCell::Blank(false));
  rel.Add(conditional);
  EXPECT_EQ(RemoveSubsumed(rel).size(), 1);
}

TEST(RemoveSubsumed, KeepsIncomparableTuples) {
  MetaRelation rel(IntColumns({"A", "B"}));
  MetaTuple left;
  left.cells().push_back(MetaCell::Const(Value::Int64(3), true));
  left.cells().push_back(MetaCell::Blank(true));
  rel.Add(left);
  MetaTuple right;
  right.cells().push_back(MetaCell::Blank(true));
  right.cells().push_back(MetaCell::Const(Value::Int64(4), true));
  rel.Add(right);
  EXPECT_EQ(RemoveSubsumed(rel).size(), 2);
}

}  // namespace
}  // namespace viewauth
