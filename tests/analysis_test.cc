// Tests for the static authorization-catalog analyzer (src/analysis):
// one scenario per diagnostic, the clean-catalog no-findings case, and
// the engine/parser exposures (`analyze` statement, permit/deny-time
// warnings).

#include "analysis/catalog_analyzer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/view_implication.h"
#include "engine/durable.h"
#include "engine/engine.h"
#include "parser/parser.h"
#include "predicate/constraint.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

int CountCheck(const AnalysisReport& report, std::string_view check) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check) ++n;
  }
  return n;
}

const Diagnostic* FindCheck(const AnalysisReport& report,
                            std::string_view check) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check) return &d;
  }
  return nullptr;
}

// The paper's catalog (Figure 1 views, Brown/Klein grants) with no
// data. Mirrors the REPL seed script.
constexpr char kPaperCatalog[] = R"(
  relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
  relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
  relation ASSIGNMENT (E_NAME string key, P_NO string key)
  view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
  view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
    where PROJECT.SPONSOR = Acme
  view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
    where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
    and PROJECT.NUMBER = ASSIGNMENT.P_NO
    and PROJECT.BUDGET >= 250000
  view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
    where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE
  permit SAE to Brown
  permit PSA to Brown
  permit EST to Brown
  permit ELP to Klein
  permit EST to Klein
)";

// A view whose emptiness only finite-domain enumeration sees: three
// employees' salaries pairwise distinct inside a two-value range.
constexpr char kPigeonholeView[] =
    "view PIGEON (EMPLOYEE:1.NAME)"
    " where EMPLOYEE:1.SALARY >= 1 and EMPLOYEE:1.SALARY <= 2"
    " and EMPLOYEE:2.SALARY >= 1 and EMPLOYEE:2.SALARY <= 2"
    " and EMPLOYEE:3.SALARY >= 1 and EMPLOYEE:3.SALARY <= 2"
    " and EMPLOYEE:1.SALARY != EMPLOYEE:2.SALARY"
    " and EMPLOYEE:1.SALARY != EMPLOYEE:3.SALARY"
    " and EMPLOYEE:2.SALARY != EMPLOYEE:3.SALARY";

TEST(AnalysisTest, CleanPaperCatalogHasNoFindings) {
  Engine engine;
  auto setup = engine.ExecuteScript(kPaperCatalog);
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  EXPECT_FALSE(report.HasFindings()) << report.ToString();
  EXPECT_FALSE(report.HasErrors());
  // The coverage table is still populated: both users reach columns.
  EXPECT_FALSE(report.coverage().empty());
  for (const CoverageEntry& entry : report.coverage()) {
    EXPECT_FALSE(entry.columns.empty())
        << entry.user << " x " << entry.relation;
  }
  EXPECT_EQ(report.SummaryLine(), "catalog analysis: no findings");

  // The surface statement goes through the same analyzer.
  auto out = engine.Execute("analyze");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("no findings"), std::string::npos) << *out;
}

TEST(AnalysisTest, DeepCheckCatchesTermDisequalityPigeonhole) {
  ConstraintSet set;
  for (TermId t : {1, 2, 3}) {
    set.DeclareTermType(t, ValueType::kInt64);
    set.AddTermConst(t, Comparator::kGe, Value::Int64(1));
    set.AddTermConst(t, Comparator::kLe, Value::Int64(2));
  }
  set.AddTermTerm(1, Comparator::kNe, 2);
  set.AddTermTerm(1, Comparator::kNe, 3);
  set.AddTermTerm(2, Comparator::kNe, 3);
  // The incremental solver is incomplete here (documented): it keeps the
  // set "satisfiable", which is exactly why the analyzer needs the deep
  // check.
  EXPECT_TRUE(set.IsSatisfiable());
  EXPECT_EQ(set.DeepCheckSatisfiable(), Truth::kFalse);

  // With only two pigeons there is a model, and enumeration finds it.
  ConstraintSet sat;
  for (TermId t : {1, 2}) {
    sat.DeclareTermType(t, ValueType::kInt64);
    sat.AddTermConst(t, Comparator::kGe, Value::Int64(1));
    sat.AddTermConst(t, Comparator::kLe, Value::Int64(2));
  }
  sat.AddTermTerm(1, Comparator::kNe, 2);
  EXPECT_EQ(sat.DeepCheckSatisfiable(), Truth::kTrue);

  // A tiny limit degrades to "don't know", never to a wrong verdict.
  EXPECT_EQ(set.DeepCheckSatisfiable(2), Truth::kUnknown);
}

TEST(AnalysisTest, UnsatisfiableViewReported) {
  Engine engine;
  auto setup = engine.ExecuteScript(
      std::string("relation EMPLOYEE (NAME string key, TITLE string, "
                  "SALARY int)\n") +
      kPigeonholeView + "\npermit PIGEON to Brown");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "unsat-view"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "unsat-view");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location, "view PIGEON");
  EXPECT_TRUE(report.HasErrors());
}

TEST(AnalysisTest, SubsumedPermitReported) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 20000
    view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    permit WIDE to Brown
    permit NARROW to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "subsumed-permit"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "subsumed-permit");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "permit NARROW to Brown");
  EXPECT_NE(d->message.find("permit WIDE to Brown"), std::string::npos);
  // Warnings alone are not errors.
  EXPECT_FALSE(report.HasErrors());
}

TEST(AnalysisTest, SubsumedPermitViaGroupMembership) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 20000
    view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    member Brown of Eng
    permit WIDE to Eng
    permit NARROW to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "subsumed-permit"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "subsumed-permit");
  EXPECT_EQ(d->location, "permit NARROW to Brown");
  EXPECT_NE(d->message.find("permit WIDE to Eng"), std::string::npos);
  EXPECT_NE(d->message.find("Brown"), std::string::npos);
}

TEST(AnalysisTest, EquivalentGrantsFlagOnlyTheLater) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view A1 (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    view A2 (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    permit A1 to Brown
    permit A2 to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "subsumed-permit"), 1) << report.ToString();
  EXPECT_EQ(FindCheck(report, "subsumed-permit")->location,
            "permit A2 to Brown");
}

TEST(AnalysisTest, ShadowedDenyViaGroupGrant) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    member Klein of Eng
    permit SAE to Klein
    permit SAE to Eng
    deny SAE to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "shadowed-deny"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "shadowed-deny");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location, "deny SAE to Klein");
  EXPECT_NE(d->message.find("permit SAE to Eng"), std::string::npos);
}

TEST(AnalysisTest, ShadowedDenyViaImpliedView) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 20000
    view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    permit WIDE to Brown
    permit NARROW to Brown
    deny NARROW to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "shadowed-deny"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "shadowed-deny");
  EXPECT_EQ(d->location, "deny NARROW to Brown");
  EXPECT_NE(d->message.find("permit WIDE to Brown"), std::string::npos);
}

TEST(AnalysisTest, RepermitClearsTheDenyRecord) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    member Klein of Eng
    permit SAE to Klein
    permit SAE to Eng
    deny SAE to Klein
    permit SAE to Klein
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();
  AnalysisReport report = engine.AnalyzeCatalog();
  EXPECT_EQ(CountCheck(report, "shadowed-deny"), 0) << report.ToString();
}

TEST(AnalysisTest, CoverageGapReported) {
  Engine engine;
  // COV joins ASSIGNMENT in but delivers none of its columns: the join
  // column NAME = E_NAME is not projected.
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    relation ASSIGNMENT (E_NAME string key, P_NO string key)
    view COV (EMPLOYEE.TITLE) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
    permit COV to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  AnalysisReport report = engine.AnalyzeCatalog();
  ASSERT_EQ(CountCheck(report, "coverage-gap"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "coverage-gap");
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->location, "user Brown");
  EXPECT_NE(d->message.find("ASSIGNMENT"), std::string::npos);

  // The coverage table shows the asymmetry.
  bool saw_employee = false, saw_assignment = false;
  for (const CoverageEntry& entry : report.coverage()) {
    if (entry.relation == "EMPLOYEE") {
      saw_employee = true;
      EXPECT_EQ(entry.columns, std::vector<std::string>{"TITLE"});
    }
    if (entry.relation == "ASSIGNMENT") {
      saw_assignment = true;
      EXPECT_TRUE(entry.columns.empty());
    }
  }
  EXPECT_TRUE(saw_employee);
  EXPECT_TRUE(saw_assignment);
}

TEST(AnalysisTest, VacuousComparisonReported) {
  // Driven against a hand-built definition: the compiler never produces
  // one, but stored catalogs (or future importers) could.
  ViewDefinition def;
  MetaTuple tuple;
  tuple.cells().push_back(MetaCell::Var(1, /*starred=*/true));
  def.tuples.push_back(tuple);

  ComparisonEntry entry;
  entry.view = "V";
  entry.lhs = 7;  // bound by no cell
  entry.op = Comparator::kGe;
  entry.rhs_is_var = false;
  entry.rhs_const = Value::Int64(5);
  def.comparisons.push_back(entry);

  std::vector<Diagnostic> diags;
  CheckVacuousComparisons(def, "view V", &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "vacuous-comparison");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("x7"), std::string::npos);

  // A comparison on the bound variable is fine.
  def.comparisons[0].lhs = 1;
  diags.clear();
  CheckVacuousComparisons(def, "view V", &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisTest, SchemaDriftAfterDirectDrop) {
  // The engine guards `drop relation` behind a no-referencing-views
  // check, but the storage-layer API does not; a catalog built over a
  // schema mutated directly goes stale. The analyzer flags it.
  DatabaseSchema schema;
  auto employee = RelationSchema::Make(
      "EMPLOYEE",
      {{"NAME", ValueType::kString},
       {"TITLE", ValueType::kString},
       {"SALARY", ValueType::kInt64}},
      {0});
  ASSERT_TRUE(employee.ok());
  ASSERT_TRUE(schema.AddRelation(*employee).ok());

  ViewCatalog catalog(&schema);
  auto stmt = ParseStatement("view V (EMPLOYEE.NAME)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_TRUE(catalog.DefineView(std::get<ViewStmt>(*stmt)).ok());

  // Before the drop: clean.
  EXPECT_EQ(CountCheck(CatalogAnalyzer(&catalog).Analyze(), "schema-drift"),
            0);

  ASSERT_TRUE(schema.DropRelation("EMPLOYEE").ok());
  AnalysisReport report = CatalogAnalyzer(&catalog).Analyze();
  ASSERT_EQ(CountCheck(report, "schema-drift"), 1) << report.ToString();
  const Diagnostic* d = FindCheck(report, "schema-drift");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location, "view V");
  EXPECT_NE(d->message.find("no longer exists"), std::string::npos);

  // Re-adding the relation with a re-typed column is still drift.
  auto retyped = RelationSchema::Make(
      "EMPLOYEE",
      {{"NAME", ValueType::kString},
       {"TITLE", ValueType::kString},
       {"SALARY", ValueType::kString}},
      {0});
  ASSERT_TRUE(retyped.ok());
  ASSERT_TRUE(schema.AddRelation(*retyped).ok());
  report = CatalogAnalyzer(&catalog).Analyze();
  ASSERT_EQ(CountCheck(report, "schema-drift"), 1) << report.ToString();
  EXPECT_NE(FindCheck(report, "schema-drift")->message.find("SALARY"),
            std::string::npos);
}

TEST(AnalysisTest, PermitTimeWarningsWhenEnabled) {
  Engine engine;
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
      where EMPLOYEE.SALARY >= 20000
    view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000
    permit WIDE to Brown
  )");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // Off by default: the redundant permit goes through silently.
  auto quiet = engine.Execute("permit NARROW to Brown");
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->find("subsumed-permit"), std::string::npos) << *quiet;
  auto undo = engine.Execute("deny NARROW to Brown");
  ASSERT_TRUE(undo.ok());

  engine.options().analyze_grants = true;
  // The deny above is itself shadowed-by-implication (WIDE remains), so
  // re-permitting reports the subsumption inline.
  auto warned = engine.Execute("permit NARROW to Brown");
  ASSERT_TRUE(warned.ok());
  EXPECT_NE(warned->find("subsumed-permit"), std::string::npos) << *warned;
  EXPECT_NE(warned->find("permitted NARROW to Brown"), std::string::npos);
}

TEST(AnalysisTest, AnalyzeStatementParsesAndIsNotLogged) {
  auto stmt = ParseStatement("analyze");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(std::holds_alternative<AnalyzeStmt>(*stmt));
  EXPECT_EQ(StatementToString(*stmt), "analyze");

  const std::string path =
      ::testing::TempDir() + "/viewauth_analysis_test.log";
  std::remove(path.c_str());
  auto durable = DurableEngine::Open(path);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE(
      (*durable)
          ->Execute(
              "relation EMPLOYEE (NAME string key, SALARY int)")
          .ok());
  auto out = (*durable)->Execute("analyze");
  ASSERT_TRUE(out.ok()) << out.status();

  std::ifstream log(path);
  std::stringstream contents;
  contents << log.rdbuf();
  EXPECT_EQ(contents.str().find("analyze"), std::string::npos)
      << contents.str();
  std::remove(path.c_str());
}

TEST(AnalysisTest, BranchImpliedRequiresStructureAndConstraints) {
  PaperDatabase fixture;
  ViewCatalog& catalog = fixture.catalog();
  auto wide = ParseStatement(
      "view WIDE (EMPLOYEE.NAME, EMPLOYEE.SALARY)"
      " where EMPLOYEE.SALARY >= 20000");
  auto narrow = ParseStatement(
      "view NARROW (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= 30000");
  ASSERT_TRUE(wide.ok() && narrow.ok());
  ASSERT_TRUE(catalog.DefineView(std::get<ViewStmt>(*wide)).ok());
  ASSERT_TRUE(catalog.DefineView(std::get<ViewStmt>(*narrow)).ok());

  const ViewDefinition& w = **catalog.GetView("WIDE");
  const ViewDefinition& n = **catalog.GetView("NARROW");
  const ViewDefinition& sae = **catalog.GetView("SAE");
  const ViewDefinition& est = **catalog.GetView("EST");

  EXPECT_TRUE(BranchImplied(n, w));       // narrower in every way
  EXPECT_FALSE(BranchImplied(w, n));      // projection not contained
  EXPECT_TRUE(BranchImplied(w, sae));     // SAE is unconstrained
  EXPECT_FALSE(BranchImplied(sae, w));    // constraint not implied
  EXPECT_FALSE(BranchImplied(sae, est));  // different atom structure
}

}  // namespace
}  // namespace viewauth
