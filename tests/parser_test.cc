// Unit tests for the lexer and parser of the surface language.

#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/lexer.h"

namespace viewauth {
namespace {

TEST(Lexer, BasicTokens) {
  auto tokens = Tokenize("view V (R.A) where R.A >= 250000");
  ASSERT_TRUE(tokens.ok());
  // view V ( R . A ) where R . A >= 250000 <end>
  ASSERT_EQ(tokens->size(), 14u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "view");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[11].kind, TokenKind::kComparator);
  EXPECT_EQ((*tokens)[11].text, ">=");
  EXPECT_EQ((*tokens)[12].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[12].int_value, 250000);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(Lexer, DashedIdentifiers) {
  auto tokens = Tokenize("bq-45 sv-72-x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "bq-45");
  EXPECT_EQ((*tokens)[1].text, "sv-72-x");
  // A dangling dash is not part of an identifier and cannot start a
  // number here either.
  EXPECT_FALSE(Tokenize("a- b").ok());
}

TEST(Lexer, NumbersAndNegatives) {
  auto tokens = Tokenize("(-5, 2.75, 10)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[1].int_value, -5);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, 2.75);
}

TEST(Lexer, StringsWithEscapes) {
  auto tokens = Tokenize("'hello world' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
  EXPECT_EQ((*tokens)[1].text, "it's");
  EXPECT_TRUE(Tokenize("'unterminated").status().IsInvalidArgument());
}

TEST(Lexer, CommentsAndComparators) {
  auto tokens = Tokenize("a = b -- comment to end\n c <> d != e");
  ASSERT_TRUE(tokens.ok());
  // a = b c <> d != e <end>
  EXPECT_EQ((*tokens)[1].text, "=");
  EXPECT_EQ((*tokens)[4].text, "!=");  // <> normalizes
  EXPECT_EQ((*tokens)[6].text, "!=");
  EXPECT_EQ((*tokens)[7].text, "e");
}

TEST(Lexer, ErrorsCarryPosition) {
  auto status = Tokenize("a\n  $").status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(Parser, RelationStatement) {
  auto stmt = ParseStatement(
      "relation EMPLOYEE (NAME string key, TITLE string, SALARY int)");
  ASSERT_TRUE(stmt.ok());
  const auto& rel = std::get<RelationStmt>(*stmt);
  EXPECT_EQ(rel.name, "EMPLOYEE");
  ASSERT_EQ(rel.attributes.size(), 3u);
  EXPECT_TRUE(rel.attributes[0].is_key);
  EXPECT_EQ(rel.attributes[2].type, ValueType::kInt64);
}

TEST(Parser, InsertStatement) {
  auto stmt =
      ParseStatement("insert into PROJECT values (bq-45, Acme, 300000)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(*stmt);
  EXPECT_EQ(ins.relation, "PROJECT");
  ASSERT_EQ(ins.values.size(), 3u);
  EXPECT_EQ(ins.values[0], Value::String("bq-45"));
  EXPECT_EQ(ins.values[2], Value::Int64(300000));
}

TEST(Parser, ViewWithOccurrences) {
  auto stmt = ParseStatement(
      "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  ASSERT_TRUE(stmt.ok());
  const auto& view = std::get<ViewStmt>(*stmt);
  EXPECT_EQ(view.name, "EST");
  ASSERT_EQ(view.targets.size(), 3u);
  EXPECT_EQ(view.targets[1].occurrence, 2);
  ASSERT_EQ(view.conditions.size(), 1u);
  EXPECT_TRUE(view.conditions[0].rhs.is_attribute);
  EXPECT_EQ(view.conditions[0].rhs.attribute.occurrence, 2);
}

TEST(Parser, BareIdentifierIsStringConstant) {
  auto stmt = ParseStatement(
      "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme");
  ASSERT_TRUE(stmt.ok());
  const auto& ret = std::get<RetrieveStmt>(*stmt);
  ASSERT_EQ(ret.conditions.size(), 1u);
  EXPECT_FALSE(ret.conditions[0].rhs.is_attribute);
  EXPECT_EQ(ret.conditions[0].rhs.constant, Value::String("Acme"));
}

TEST(Parser, RetrieveWithAsUser) {
  auto stmt = ParseStatement("retrieve (R.A) where R.B > 5 as Klein");
  ASSERT_TRUE(stmt.ok());
  const auto& ret = std::get<RetrieveStmt>(*stmt);
  EXPECT_EQ(ret.as_user, "Klein");
  EXPECT_EQ(ret.conditions[0].op, Comparator::kGt);
}

TEST(Parser, PermitAndDeny) {
  auto permit = ParseStatement("permit EST to KLEIN");
  ASSERT_TRUE(permit.ok());
  EXPECT_EQ(std::get<PermitStmt>(*permit).view, "EST");
  EXPECT_EQ(std::get<PermitStmt>(*permit).user, "KLEIN");
  auto deny = ParseStatement("deny EST to KLEIN");
  ASSERT_TRUE(deny.ok());
  EXPECT_EQ(std::get<DenyStmt>(*deny).user, "KLEIN");
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("PERMIT V TO U").ok());
  EXPECT_TRUE(ParseStatement("Retrieve (R.A) Where R.A = 1").ok());
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseStatement("frobnicate X").ok());
  EXPECT_FALSE(ParseStatement("permit V").ok());
  EXPECT_FALSE(ParseStatement("retrieve R.A").ok());          // missing parens
  EXPECT_FALSE(ParseStatement("retrieve (R.A) where R.A").ok());
  EXPECT_FALSE(ParseStatement("retrieve (R.A) extra").ok());  // trailing
  EXPECT_FALSE(ParseStatement("view V (R.A) where R.A = retrieve").ok());
  EXPECT_FALSE(ParseStatement("relation R (A floatzilla)").ok());
  EXPECT_FALSE(ParseStatement("retrieve (R:0.A)").ok());  // 1-based
}

TEST(Parser, ProgramWithSemicolonsAndComments) {
  auto program = ParseProgram(R"(
    -- the paper's grants
    permit SAE to Brown;
    permit ELP to Klein
    retrieve (R.A) as Brown
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 3u);
}

TEST(Parser, ToStringRoundTrip) {
  const char* statements[] = {
      "relation EMPLOYEE (NAME string key, SALARY int)",
      "insert into R values (a, 5, 2.5)",
      "view V (R.A, S:2.B) where R.A = S:2.B and R.C >= 10",
      "permit V to U",
      "deny V to U",
      "retrieve (R.A) where R.B != x as U",
  };
  for (const char* text : statements) {
    auto first = ParseStatement(text);
    ASSERT_TRUE(first.ok()) << text;
    std::string printed = StatementToString(*first);
    auto second = ParseStatement(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(printed, StatementToString(*second)) << text;
  }
}

}  // namespace
}  // namespace viewauth
