// Tests for disjunctive retrieve statements (union of authorized
// conjunctive branches).

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

class DisjunctiveRetrieveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
      insert into EMPLOYEE values (Jones, manager, 26000)
      insert into EMPLOYEE values (Smith, technician, 22000)
      insert into EMPLOYEE values (Brown, engineer, 32000)
      view ALL_OF_IT (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
      view CHEAP (EMPLOYEE.NAME, EMPLOYEE.SALARY)
        where EMPLOYEE.SALARY < 25000
      permit ALL_OF_IT to boss
      permit CHEAP to clerk
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Engine engine_;
};

TEST_F(DisjunctiveRetrieveTest, Parsing) {
  auto stmt = ParseStatement(
      "retrieve (R.A) where R.B = 1 or R.B = 2 and R.C > 0 as u");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& retrieve = std::get<RetrieveStmt>(*stmt);
  EXPECT_EQ(retrieve.conditions.size(), 1u);
  ASSERT_EQ(retrieve.or_branches.size(), 1u);
  EXPECT_EQ(retrieve.or_branches[0].size(), 2u);
  EXPECT_EQ(retrieve.as_user, "u");
  // Round trip.
  auto again = ParseStatement(retrieve.ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::get<RetrieveStmt>(*again).ToString(),
            retrieve.ToString());
  EXPECT_FALSE(ParseStatement("retrieve (R.A) or R.B = 1").ok());
}

TEST_F(DisjunctiveRetrieveTest, UnionOfBranches) {
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.TITLE = manager "
      "or EMPLOYEE.TITLE = engineer as boss");
  ASSERT_TRUE(out.ok()) << out.status();
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_FALSE(result->denied);
  EXPECT_TRUE(result->full_access);  // both branches fully inside the view
  EXPECT_EQ(result->answer.size(), 2);
  EXPECT_TRUE(result->answer.Contains(Tuple({Value::String("Jones")})));
  EXPECT_TRUE(result->answer.Contains(Tuple({Value::String("Brown")})));
}

TEST_F(DisjunctiveRetrieveTest, BranchesAuthorizeIndependently) {
  // The clerk's CHEAP view covers salaries < 25000: branch 1 is inside,
  // branch 2 (high earners) is denied — the union delivers branch 1.
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.SALARY < 23000 or EMPLOYEE.SALARY > 31000 as clerk");
  ASSERT_TRUE(out.ok()) << out.status();
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_FALSE(result->denied);
  EXPECT_FALSE(result->full_access);
  ASSERT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Smith"), Value::Int64(22000)})));
}

TEST_F(DisjunctiveRetrieveTest, AllBranchesDeniedMeansDenied) {
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.TITLE) where EMPLOYEE.SALARY < 23000 "
      "or EMPLOYEE.SALARY > 31000 as clerk");  // TITLE not in CHEAP
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(engine_.last_result()->denied);
}

TEST_F(DisjunctiveRetrieveTest, ExtendedMasksAcrossBranches) {
  // Under extended masks the branch masks are wide; the union must stay
  // well-formed and deliver the union of the branch portions.
  engine_.options().extended_masks = true;
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.SALARY < 23000 or EMPLOYEE.TITLE = manager "
      "as clerk");
  ASSERT_TRUE(out.ok()) << out.status();
  const AuthorizationResult* result = engine_.last_result();
  EXPECT_FALSE(result->denied);
  // Branch 1 (inside CHEAP) delivers Smith; branch 2 filters on TITLE,
  // which CHEAP neither projects nor restricts, so it contributes
  // nothing.
  ASSERT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Smith"), Value::Int64(22000)})));
}

TEST_F(DisjunctiveRetrieveTest, DuplicateRowsCollapse) {
  // Overlapping branches: each matching row is delivered once.
  auto out = engine_.Execute(
      "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 20000 "
      "or EMPLOYEE.SALARY > 25000 as boss");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(engine_.last_result()->answer.size(), 3);
}

}  // namespace
}  // namespace viewauth
