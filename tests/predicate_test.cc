// Unit tests for data-level selection predicates.

#include "predicate/predicate.h"

#include <gtest/gtest.h>

namespace viewauth {
namespace {

Tuple Row(int64_t a, int64_t b, const char* c) {
  return Tuple({Value::Int64(a), Value::Int64(b), Value::String(c)});
}

TEST(SelectionAtom, ColumnConst) {
  SelectionAtom atom =
      SelectionAtom::ColumnConst(0, Comparator::kGe, Value::Int64(5));
  EXPECT_TRUE(atom.Matches(Row(5, 0, "x")));
  EXPECT_TRUE(atom.Matches(Row(9, 0, "x")));
  EXPECT_FALSE(atom.Matches(Row(4, 0, "x")));
  EXPECT_FALSE(atom.IsColumnEquality());
}

TEST(SelectionAtom, ColumnColumn) {
  SelectionAtom atom = SelectionAtom::ColumnColumn(0, Comparator::kEq, 1);
  EXPECT_TRUE(atom.Matches(Row(3, 3, "x")));
  EXPECT_FALSE(atom.Matches(Row(3, 4, "x")));
  EXPECT_TRUE(atom.IsColumnEquality());
  EXPECT_FALSE(
      SelectionAtom::ColumnColumn(0, Comparator::kLt, 1).IsColumnEquality());
}

TEST(SelectionAtom, NullAndTypeMismatchNeverMatch) {
  SelectionAtom eq =
      SelectionAtom::ColumnConst(2, Comparator::kEq, Value::Int64(5));
  EXPECT_FALSE(eq.Matches(Row(0, 0, "5")));  // string vs int
  SelectionAtom ne =
      SelectionAtom::ColumnConst(0, Comparator::kNe, Value::Int64(5));
  Tuple with_null({Value::Null(), Value::Int64(0), Value::String("")});
  EXPECT_FALSE(ne.Matches(with_null));  // NULL satisfies nothing
}

TEST(ConjunctivePredicate, ConjunctionSemantics) {
  ConjunctivePredicate pred;
  EXPECT_TRUE(pred.IsTrivial());
  EXPECT_TRUE(pred.Matches(Row(0, 0, "")));  // empty conjunction is true
  pred.Add(SelectionAtom::ColumnConst(0, Comparator::kGt, Value::Int64(1)));
  pred.Add(SelectionAtom::ColumnColumn(0, Comparator::kLe, 1));
  EXPECT_FALSE(pred.IsTrivial());
  EXPECT_TRUE(pred.Matches(Row(2, 2, "")));
  EXPECT_FALSE(pred.Matches(Row(1, 2, "")));  // fails first atom
  EXPECT_FALSE(pred.Matches(Row(3, 2, "")));  // fails second atom
}

TEST(ConjunctivePredicate, ToStringUsesColumnNames) {
  ConjunctivePredicate pred;
  pred.Add(SelectionAtom::ColumnConst(0, Comparator::kGe, Value::Int64(5)));
  pred.Add(SelectionAtom::ColumnColumn(1, Comparator::kNe, 2));
  EXPECT_EQ(pred.ToString({"A", "B", "C"}), "A >= 5 and B != C");
  // Out-of-range columns degrade to #n rather than crashing.
  EXPECT_EQ(pred.ToString({}), "#0 >= 5 and #1 != #2");
  ConjunctivePredicate empty;
  EXPECT_EQ(empty.ToString({}), "true");
}

}  // namespace
}  // namespace viewauth
