// Unit tests for ConjunctiveQuery building and validation.

#include "calculus/conjunctive_query.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace viewauth {
namespace {

DatabaseSchema PaperSchema() {
  DatabaseSchema schema;
  EXPECT_TRUE(schema
                  .AddRelation(RelationSchema::Make(
                                   "EMPLOYEE",
                                   {{"NAME", ValueType::kString},
                                    {"TITLE", ValueType::kString},
                                    {"SALARY", ValueType::kInt64}},
                                   {0})
                                   .value())
                  .ok());
  EXPECT_TRUE(schema
                  .AddRelation(RelationSchema::Make(
                                   "ASSIGNMENT",
                                   {{"E_NAME", ValueType::kString},
                                    {"P_NO", ValueType::kString}},
                                   {0, 1})
                                   .value())
                  .ok());
  return schema;
}

Result<ConjunctiveQuery> Parse(const DatabaseSchema& schema,
                               const std::string& text) {
  auto stmt = ParseStatement(text);
  if (!stmt.ok()) return stmt.status();
  return ConjunctiveQuery::FromRetrieve(schema,
                                        std::get<RetrieveStmt>(*stmt));
}

TEST(ConjunctiveQuery, SingleAtom) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema, "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->atoms().size(), 1u);
  EXPECT_EQ(query->TotalColumns(), 3);
  EXPECT_EQ(query->targets().size(), 2u);
  EXPECT_EQ(query->FlatIndex(query->targets()[1]), 2);
  EXPECT_EQ(query->OutputColumnNames(),
            (std::vector<std::string>{"NAME", "SALARY"}));
  EXPECT_EQ(query->OutputColumnTypes()[1], ValueType::kInt64);
}

TEST(ConjunctiveQuery, MultiAtomFlatIndices) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema,
                     "retrieve (EMPLOYEE.NAME, ASSIGNMENT.P_NO) "
                     "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME");
  ASSERT_TRUE(query.ok());
  // Atoms in deterministic (name, occurrence) order: ASSIGNMENT, EMPLOYEE.
  ASSERT_EQ(query->atoms().size(), 2u);
  EXPECT_EQ(query->atoms()[0].relation, "ASSIGNMENT");
  EXPECT_EQ(query->atoms()[1].relation, "EMPLOYEE");
  EXPECT_EQ(query->TotalColumns(), 5);
  // EMPLOYEE.NAME lives after ASSIGNMENT's two columns.
  EXPECT_EQ(query->FlatIndex(query->targets()[0]), 2);
  EXPECT_EQ(query->FlatIndex(query->targets()[1]), 1);
  std::vector<std::string> names = query->ProductColumnNames();
  EXPECT_EQ(names[0], "ASSIGNMENT.E_NAME");
  EXPECT_EQ(names[2], "EMPLOYEE.NAME");
}

TEST(ConjunctiveQuery, DuplicateRelationOccurrences) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema,
                     "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
                     "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->atoms().size(), 2u);
  EXPECT_EQ(query->atoms()[0].occurrence, 1);
  EXPECT_EQ(query->atoms()[1].occurrence, 2);
  // Duplicate output names get :i suffixes.
  EXPECT_EQ(query->OutputColumnNames(),
            (std::vector<std::string>{"NAME:1", "NAME:2"}));
  // Product columns are qualified by occurrence.
  EXPECT_EQ(query->ProductColumnNames()[0], "EMPLOYEE:1.NAME");
  EXPECT_EQ(query->ProductColumnNames()[3], "EMPLOYEE:2.NAME");
}

TEST(ConjunctiveQuery, OccurrenceGapRejected) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema, "retrieve (EMPLOYEE:2.NAME)");
  EXPECT_TRUE(query.status().IsInvalidArgument());
}

TEST(ConjunctiveQuery, UnknownNamesRejected) {
  DatabaseSchema schema = PaperSchema();
  EXPECT_TRUE(Parse(schema, "retrieve (NOPE.A)").status().IsNotFound());
  EXPECT_TRUE(
      Parse(schema, "retrieve (EMPLOYEE.NOPE)").status().IsNotFound());
  EXPECT_TRUE(Parse(schema,
                    "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = "
                    "NOPE.A")
                  .status()
                  .IsNotFound());
}

TEST(ConjunctiveQuery, TypeMismatchesRejected) {
  DatabaseSchema schema = PaperSchema();
  // string column vs integer constant
  EXPECT_TRUE(Parse(schema,
                    "retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME = 5")
                  .status()
                  .IsSchemaMismatch());
  // int column vs string column
  EXPECT_TRUE(Parse(schema,
                    "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY = "
                    "EMPLOYEE.TITLE")
                  .status()
                  .IsSchemaMismatch());
  // int column vs double constant is fine
  EXPECT_TRUE(Parse(schema,
                    "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 2.5")
                  .ok());
}

TEST(ConjunctiveQuery, EmptyTargetsRejected) {
  DatabaseSchema schema = PaperSchema();
  EXPECT_TRUE(
      ConjunctiveQuery::Build(schema, "q", {}, {}).status()
          .IsInvalidArgument());
}

TEST(ConjunctiveQuery, OutputSchema) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema, "retrieve (EMPLOYEE.SALARY, EMPLOYEE.NAME)");
  ASSERT_TRUE(query.ok());
  auto out = query->OutputSchema("ANSWER");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->name(), "ANSWER");
  EXPECT_EQ(out->attribute(0).name, "SALARY");
  EXPECT_EQ(out->attribute(0).type, ValueType::kInt64);
  EXPECT_EQ(out->attribute(1).name, "NAME");
}

TEST(ConjunctiveQuery, ConditionsResolved) {
  DatabaseSchema schema = PaperSchema();
  auto query = Parse(schema,
                     "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY >= "
                     "250000 and EMPLOYEE.NAME != Smith");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->conditions().size(), 2u);
  EXPECT_EQ(query->conditions()[0].op, Comparator::kGe);
  EXPECT_FALSE(query->conditions()[0].rhs_is_column);
  EXPECT_EQ(query->conditions()[1].rhs_const, Value::String("Smith"));
}

}  // namespace
}  // namespace viewauth
