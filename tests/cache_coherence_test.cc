// Cache-coherence torture tier: seeded randomized interleavings of
// permit / deny / insert / view-redefinition / membership / retrieve
// statements across eight users, executed in lockstep on two engines:
//
//   * the CACHED engine runs with the default fast pipeline
//     (authorization cache, meta cache, parallel meta evaluation,
//     vectorized columnar data plan with fused mask application);
//   * the LATEMAT engine runs the same fast pipeline but with the
//     tuple-at-a-time late-materialized data plan, so both optimized
//     plans are tortured against the same statement stream;
//   * the ORACLE engine runs cold — no caches, no parallelism,
//     canonical data plan — so every one of its answers is derived
//     from scratch against the current catalog.
//
// After every step both engines execute the same probe retrieves and
// their structured results (denied / full-access flags, sorted answer
// rows, alpha-normalized mask keys, normalized inferred permits) must
// be identical. Any stale cache entry that survives a catalog mutation
// it depended on shows up as a divergence on the very next probe, which
// makes this tier the end-to-end check on the dependency-tracked
// selective invalidation in authz/authz_cache.{h,cc}.
//
// Runs in the unit tier and, via tools/check.sh, under TSan and
// ASan+UBSan; its own dedicated step keeps the unit tier fast.

#include <algorithm>
#include <random>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace viewauth {
namespace {

// Synthetic selection variables (w-vars) get ids from the catalog
// allocator; cache hits skip allocations, so the numbering diverges
// between the cached and oracle engines even though the masks are
// structurally identical. Collapse them before comparing.
std::string NormalizeSyntheticVars(const std::string& text) {
  static const std::regex kWVar("w[0-9]+");
  return std::regex_replace(text, kWVar, "w#");
}

// Everything observable about one retrieve, in comparable form.
struct Observed {
  bool denied = false;
  bool full_access = false;
  std::vector<Tuple> answer;
  std::vector<std::string> mask_keys;
  std::vector<std::string> permits;

  bool operator==(const Observed& other) const = default;
};

Observed Summarize(const AuthorizationResult& result) {
  Observed o;
  o.denied = result.denied;
  o.full_access = result.full_access;
  o.answer = result.answer.SortedRows();
  for (const MetaTuple& tuple : result.mask.tuples()) {
    o.mask_keys.push_back(tuple.StructuralKey(/*include_provenance=*/false));
  }
  std::sort(o.mask_keys.begin(), o.mask_keys.end());
  for (const InferredPermit& permit : result.permits) {
    o.permits.push_back(NormalizeSyntheticVars(permit.ToString()));
  }
  std::sort(o.permits.begin(), o.permits.end());
  return o;
}

constexpr const char* kUsers[] = {"u0", "u1", "u2", "u3",
                                  "u4", "u5", "u6", "u7"};
constexpr int kUserCount = 8;

// One lockstep harness: both engines see the identical statement
// stream, so their catalogs allocate identical view variable ids.
class Torture {
 public:
  Torture() {
    oracle_.options().enable_authz_cache = false;
    oracle_.options().use_meta_cache = false;
    oracle_.options().parallel_meta_evaluation = false;
    oracle_.options().use_optimized_data_plan = false;
    oracle_.options().use_latemat_data_plan = false;
    oracle_.options().use_vectorized_data_plan = false;
    // cached_ keeps the defaults (vectorized); latemat_ pins the
    // tuple-at-a-time late-materialized plan.
    latemat_.options().use_vectorized_data_plan = false;
  }

  Engine& cached() { return cached_; }

  // Probes that executed successfully on both engines; the tests assert
  // this stays high so matching failures can never pass vacuously.
  int successful_probes() const { return successful_probes_; }

  // Loads a multi-statement setup script into both engines; it must
  // succeed on both.
  ::testing::AssertionResult Load(const std::string& script) {
    auto fast = cached_.ExecuteScript(script);
    auto late = latemat_.ExecuteScript(script);
    auto cold = oracle_.ExecuteScript(script);
    if (!fast.ok() || !late.ok() || !cold.ok()) {
      return ::testing::AssertionFailure()
             << "setup script failed: cached "
             << (fast.ok() ? "ok" : fast.status().ToString()) << ", latemat "
             << (late.ok() ? "ok" : late.status().ToString()) << ", oracle "
             << (cold.ok() ? "ok" : cold.status().ToString());
    }
    return ::testing::AssertionSuccess();
  }

  // Executes one statement on both engines; the outcomes must agree.
  ::testing::AssertionResult Apply(const std::string& statement) {
    auto fast = cached_.Execute(statement);
    auto late = latemat_.Execute(statement);
    auto cold = oracle_.Execute(statement);
    if (fast.ok() != cold.ok() || late.ok() != cold.ok()) {
      return ::testing::AssertionFailure()
             << "statement outcome diverged on `" << statement
             << "`: cached " << (fast.ok() ? "ok" : fast.status().ToString())
             << ", latemat " << (late.ok() ? "ok" : late.status().ToString())
             << ", oracle " << (cold.ok() ? "ok" : cold.status().ToString());
    }
    return ::testing::AssertionSuccess();
  }

  // Runs one probe retrieve on both engines and differences the
  // structured results.
  ::testing::AssertionResult Probe(const std::string& retrieve) {
    auto fast = cached_.Execute(retrieve);
    auto late = latemat_.Execute(retrieve);
    auto cold = oracle_.Execute(retrieve);
    if (fast.ok() != cold.ok() || late.ok() != cold.ok()) {
      return ::testing::AssertionFailure()
             << "probe outcome diverged on `" << retrieve << "`: cached "
             << (fast.ok() ? "ok" : fast.status().ToString()) << ", latemat "
             << (late.ok() ? "ok" : late.status().ToString()) << ", oracle "
             << (cold.ok() ? "ok" : cold.status().ToString());
    }
    if (!fast.ok()) return ::testing::AssertionSuccess();
    ++successful_probes_;
    if (cached_.last_result() == nullptr || latemat_.last_result() == nullptr ||
        oracle_.last_result() == nullptr) {
      return ::testing::AssertionFailure()
             << "probe produced no structured result: " << retrieve;
    }
    const Observed want = Summarize(*oracle_.last_result());
    const struct {
      const char* label;
      const AuthorizationResult* result;
    } legs[] = {{"cached (vectorized)", cached_.last_result()},
                {"latemat", latemat_.last_result()}};
    for (const auto& leg : legs) {
      const Observed got = Summarize(*leg.result);
      if (!(got == want)) {
        return ::testing::AssertionFailure()
               << leg.label << " engine diverged from oracle on `" << retrieve
               << "`: denied " << want.denied << "/" << got.denied
               << ", full_access " << want.full_access << "/"
               << got.full_access << ", answer rows " << want.answer.size()
               << "/" << got.answer.size() << ", mask tuples "
               << want.mask_keys.size() << "/" << got.mask_keys.size()
               << ", permits " << want.permits.size() << "/"
               << got.permits.size();
      }
    }
    return ::testing::AssertionSuccess();
  }

 private:
  Engine cached_;
  Engine latemat_;
  Engine oracle_;
  int successful_probes_ = 0;
};

// The shared two-relation schema every torture scenario runs against.
const char* Schema() {
  return R"(
    relation EMP (NAME string key, DEPT string, SALARY int, LEVEL int)
    relation PROJ (PNO int key, DEPT string, BUDGET int)
    insert into EMP values (jones, sales, 26000, 2)
    insert into EMP values (smith, eng, 22000, 1)
    insert into EMP values (brown, eng, 32000, 3)
    insert into EMP values (klein, ops, 41000, 4)
    insert into PROJ values (1, eng, 150000)
    insert into PROJ values (2, sales, 90000)
    insert into PROJ values (3, ops, 300000)
  )";
}

// View definition text for rotating view slot `slot` at threshold step
// `rev`; redefinitions move the threshold so stale cached masks derived
// from the old definition produce visibly different answers.
std::string ViewText(int slot, int rev) {
  switch (slot % 4) {
    case 0:
      return "view V" + std::to_string(slot) +
             " (EMP.NAME, EMP.SALARY) where EMP.SALARY >= " +
             std::to_string(20000 + 4000 * (rev % 4));
    case 1:
      return "view V" + std::to_string(slot) +
             " (EMP.NAME, EMP.DEPT, EMP.LEVEL) where EMP.LEVEL >= " +
             std::to_string(1 + rev % 4);
    case 2:
      return "view V" + std::to_string(slot) +
             " (PROJ.PNO, PROJ.BUDGET) where PROJ.BUDGET >= " +
             std::to_string(80000 + 60000 * (rev % 4));
    default:
      return "view V" + std::to_string(slot) +
             " (EMP.NAME, PROJ.PNO, PROJ.BUDGET) where EMP.DEPT = PROJ.DEPT"
             " and EMP.LEVEL >= " +
             std::to_string(1 + rev % 3);
  }
}

std::string ProbeText(int shape, const std::string& user) {
  switch (shape % 4) {
    case 0:
      return "retrieve (EMP.NAME, EMP.SALARY) as " + user;
    case 1:
      return "retrieve (EMP.NAME, EMP.DEPT, EMP.LEVEL) as " + user;
    case 2:
      return "retrieve (PROJ.PNO, PROJ.BUDGET) as " + user;
    default:
      return "retrieve (EMP.NAME, PROJ.BUDGET) where EMP.DEPT = PROJ.DEPT"
             " as " +
             user;
  }
}

TEST(CacheCoherenceTorture, RandomizedInterleavings) {
  constexpr int kViewSlots = 6;
  constexpr int kSteps = 320;

  Torture torture;
  ASSERT_TRUE(torture.Load(Schema()));

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> op(0, 99);
  std::uniform_int_distribution<int> pick_user(0, kUserCount - 1);
  std::uniform_int_distribution<int> pick_slot(0, kViewSlots - 1);
  std::uniform_int_distribution<int> pick_shape(0, 3);
  std::uniform_int_distribution<int> salary(18000, 45000);

  // Bring every view slot up at revision 0 and seed a few grants so the
  // cache has entries to invalidate from the first mutation on.
  std::vector<int> revision(kViewSlots, 0);
  std::vector<bool> defined(kViewSlots, true);
  for (int slot = 0; slot < kViewSlots; ++slot) {
    ASSERT_TRUE(torture.Apply(ViewText(slot, 0)));
    ASSERT_TRUE(torture.Apply("permit V" + std::to_string(slot) + " to " +
                              kUsers[slot % kUserCount]));
  }
  // A group grant so membership churn is part of the interleaving.
  ASSERT_TRUE(torture.Apply("permit V0 to staff"));
  ASSERT_TRUE(torture.Apply("member u6 of staff"));
  std::vector<bool> in_staff(kUserCount, false);
  in_staff[6] = true;

  int inserted = 0;
  for (int step = 0; step < kSteps; ++step) {
    const int roll = op(rng);
    const int slot = pick_slot(rng);
    const std::string view = "V" + std::to_string(slot);
    const std::string user = kUsers[pick_user(rng)];

    if (roll < 15) {  // permit
      if (defined[slot]) {
        ASSERT_TRUE(torture.Apply("permit " + view + " to " + user))
            << "step " << step;
      }
    } else if (roll < 27) {  // deny
      if (defined[slot]) {
        ASSERT_TRUE(torture.Apply("deny " + view + " to " + user))
            << "step " << step;
      }
    } else if (roll < 42) {  // insert
      ++inserted;
      if (inserted % 2 == 0) {
        ASSERT_TRUE(torture.Apply(
            "insert into EMP values (n" + std::to_string(inserted) + ", " +
            (inserted % 3 == 0 ? "eng" : "sales") + ", " +
            std::to_string(salary(rng)) + ", " +
            std::to_string(1 + inserted % 4) + ")"))
            << "step " << step;
      } else {
        ASSERT_TRUE(torture.Apply(
            "insert into PROJ values (" + std::to_string(100 + inserted) +
            ", " + (inserted % 3 == 0 ? "ops" : "eng") + ", " +
            std::to_string(50000 + 1000 * inserted) + ")"))
            << "step " << step;
      }
    } else if (roll < 52) {  // view redefinition (drop + define)
      if (defined[slot]) {
        ASSERT_TRUE(torture.Apply("drop view " + view)) << "step " << step;
        defined[slot] = false;
      } else {
        ++revision[slot];
        ASSERT_TRUE(torture.Apply(ViewText(slot, revision[slot])))
            << "step " << step;
        defined[slot] = true;
      }
    } else if (roll < 60) {  // group membership churn
      const int member = pick_user(rng);
      if (in_staff[member]) {
        ASSERT_TRUE(
            torture.Apply(std::string("unmember ") + kUsers[member] +
                          " of staff"))
            << "step " << step;
        in_staff[member] = false;
      } else {
        ASSERT_TRUE(torture.Apply(std::string("member ") + kUsers[member] +
                                  " of staff"))
            << "step " << step;
        in_staff[member] = true;
      }
    }
    // else: pure retrieve step — the probes below are the retrieve.

    // After EVERY step the cached engine must agree with the cold
    // oracle: once as the (possibly) affected user, once as an
    // unrelated user whose entries should have been retained.
    ASSERT_TRUE(torture.Probe(ProbeText(pick_shape(rng), user)))
        << "step " << step;
    ASSERT_TRUE(torture.Probe(ProbeText(pick_shape(rng),
                                        kUsers[pick_user(rng)])))
        << "step " << step;
    if (HasFatalFailure()) return;
  }

  // The torture is only meaningful if the probes actually executed, the
  // cache actually served hits, and the selective path actually
  // processed targeted events.
  EXPECT_GE(torture.successful_probes(), kSteps);
  const AuthzStats stats = torture.cached().authz_stats();
  EXPECT_GT(stats.mask_hits, 0);
  EXPECT_GT(stats.invalidations_exact, 0);
  EXPECT_GT(stats.entries_retained, 0);
  EXPECT_GT(stats.entries_invalidated, 0);
}

// A focused deterministic interleaving around the highest-risk
// transitions: redefinition of a view a user's cached mask embeds,
// membership-driven grant changes, and cross-user retention.
TEST(CacheCoherenceTorture, DirectedRedefinitionAndMembership) {
  Torture torture;
  ASSERT_TRUE(torture.Load(Schema()));
  ASSERT_TRUE(torture.Apply(
      "view SAL (EMP.NAME, EMP.SALARY) where EMP.SALARY >= 25000"));
  ASSERT_TRUE(torture.Apply("view PB (PROJ.PNO, PROJ.BUDGET)"));
  ASSERT_TRUE(torture.Apply("permit SAL to u0"));
  ASSERT_TRUE(torture.Apply("permit PB to crew"));
  ASSERT_TRUE(torture.Apply("member u1 of crew"));

  const std::string q_emp = "retrieve (EMP.NAME, EMP.SALARY) as u0";
  const std::string q_proj_u1 = "retrieve (PROJ.PNO, PROJ.BUDGET) as u1";
  const std::string q_proj_u2 = "retrieve (PROJ.PNO, PROJ.BUDGET) as u2";

  // Warm the cache for all three, then mutate around them.
  ASSERT_TRUE(torture.Probe(q_emp));
  ASSERT_TRUE(torture.Probe(q_proj_u1));
  ASSERT_TRUE(torture.Probe(q_proj_u2));

  // Redefine SAL with a different threshold: u0's mask must change.
  ASSERT_TRUE(torture.Apply("drop view SAL"));
  ASSERT_TRUE(torture.Probe(q_emp));
  ASSERT_TRUE(torture.Apply(
      "view SAL (EMP.NAME, EMP.SALARY) where EMP.SALARY >= 40000"));
  ASSERT_TRUE(torture.Apply("permit SAL to u0"));
  ASSERT_TRUE(torture.Probe(q_emp));

  // Membership churn: u1 leaves and rejoins crew; u2 joins late.
  ASSERT_TRUE(torture.Apply("unmember u1 of crew"));
  ASSERT_TRUE(torture.Probe(q_proj_u1));
  ASSERT_TRUE(torture.Apply("member u1 of crew"));
  ASSERT_TRUE(torture.Apply("member u2 of crew"));
  ASSERT_TRUE(torture.Probe(q_proj_u1));
  ASSERT_TRUE(torture.Probe(q_proj_u2));

  // Deny then re-permit, interleaved with inserts that must never
  // invalidate (the repeat probes ride the cache).
  ASSERT_TRUE(torture.Apply("deny PB to u1"));
  ASSERT_TRUE(torture.Probe(q_proj_u1));
  ASSERT_TRUE(torture.Apply("insert into PROJ values (9, eng, 500000)"));
  ASSERT_TRUE(torture.Probe(q_proj_u2));
  ASSERT_TRUE(torture.Apply("permit PB to u1"));
  ASSERT_TRUE(torture.Probe(q_proj_u1));

  EXPECT_GE(torture.successful_probes(), 10);
  const AuthzStats stats = torture.cached().authz_stats();
  EXPECT_GT(stats.mask_hits, 0);
  EXPECT_GT(stats.invalidations_exact, 0);
}

}  // namespace
}  // namespace viewauth
