// Shared filesystem test doubles for the concurrency tiers.
//
// GateFileSystem wraps a base FileSystem so that every file Sync() parks
// at a gate until the test opens it. This freezes a DurableEngine commit
// batch exactly at its fsync — the window in which reader liveness,
// straggler batching and compaction quiescence are interesting — without
// any timing dependence: the test closes the gate, starts threads, waits
// until a syncer is provably parked (AwaitWaiter), observes, then opens
// the gate and joins.

#ifndef VIEWAUTH_TESTS_TEST_FS_UTIL_H_
#define VIEWAUTH_TESTS_TEST_FS_UTIL_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/file.h"
#include "common/result.h"

namespace viewauth {

class GateFileSystem : public FileSystem {
 public:
  explicit GateFileSystem(FileSystem* base) : base_(base) {}

  // Future Sync() calls park until OpenGate().
  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }

  void OpenGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  // Blocks until at least one thread is parked at the gate.
  void AwaitWaiter() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return waiting_ > 0; });
  }

  int waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    VIEWAUTH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                              base_->NewWritableFile(path, mode));
    return std::unique_ptr<WritableFile>(
        std::make_unique<GatedFile>(std::move(base), this));
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status SyncDirectoryOf(const std::string& path) override {
    return base_->SyncDirectoryOf(path);
  }

 private:
  class GatedFile : public WritableFile {
   public:
    GatedFile(std::unique_ptr<WritableFile> base, GateFileSystem* fs)
        : base_(std::move(base)), fs_(fs) {}
    Status Append(std::string_view data) override {
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      fs_->WaitAtGate();
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
    GateFileSystem* fs_;
  };

  void WaitAtGate() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
    --waiting_;
    cv_.notify_all();
  }

  FileSystem* base_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  int waiting_ = 0;
};

}  // namespace viewauth

#endif  // VIEWAUTH_TESTS_TEST_FS_UTIL_H_
