// Unit tests for Status, Result, CRC32 and string utilities.

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace viewauth {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status status = Status::NotFound("relation 'X' does not exist");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "relation 'X' does not exist");
  EXPECT_EQ(status.ToString(), "Not found: relation 'X' does not exist");
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::SchemaMismatch("x").IsSchemaMismatch());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Unavailable("log gone").ToString(),
            "Unavailable: log gone");
}

TEST(Status, CopyShares) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  VIEWAUTH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_TRUE(UsesReturnMacro(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  VIEWAUTH_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(Result, ValueAndStatus) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(-1), -1);
  EXPECT_EQ(ok.ValueOr(-1), 5);
}

TEST(Result, AssignOrReturnMacro) {
  auto doubled = DoublePositive(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  EXPECT_TRUE(DoublePositive(0).status().IsInvalidArgument());
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StrUtil, Join) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<int>{1, 2}, "-"), "1-2");
}

TEST(StrUtil, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtil, CaseHelpers) {
  EXPECT_EQ(ToUpperAscii("Acme-1"), "ACME-1");
  EXPECT_EQ(ToLowerAscii("Acme-1"), "acme-1");
  EXPECT_TRUE(EqualsIgnoreCaseAscii("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("WHERE", "wher"));
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("viewauth", "view"));
  EXPECT_FALSE(StartsWith("view", "viewauth"));
  EXPECT_TRUE(EndsWith("viewauth", "auth"));
  EXPECT_FALSE(EndsWith("auth", "viewauth"));
}

TEST(Crc32, KnownVectors) {
  // The standard CRC32 (IEEE 802.3) check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  EXPECT_EQ(Crc32(std::string_view("\0", 1)), 0xD202EF8Du);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "permit SAE to Brown for delete";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = kCrc32Init;
    crc = Crc32Update(crc, std::string_view(data).substr(0, split));
    crc = Crc32Update(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "insert into EMPLOYEE values (Jones, manager, 26000)";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(StrUtil, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(250000), "250,000");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
  EXPECT_EQ(FormatWithCommas(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace viewauth
