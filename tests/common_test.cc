// Unit tests for Status, Result, CRC32, string utilities, the execution
// governor's ExecContext, and the bounded thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace viewauth {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status status = Status::NotFound("relation 'X' does not exist");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "relation 'X' does not exist");
  EXPECT_EQ(status.ToString(), "Not found: relation 'X' does not exist");
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::SchemaMismatch("x").IsSchemaMismatch());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Unavailable("log gone").ToString(),
            "Unavailable: log gone");
}

TEST(Status, GovernedAbortCodes) {
  Status deadline = Status::DeadlineExceeded("past 5 ms");
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_TRUE(deadline.IsGovernedAbort());
  EXPECT_EQ(deadline.ToString(), "Deadline exceeded: past 5 ms");

  Status budget = Status::ResourceExhausted("row budget");
  EXPECT_TRUE(budget.IsResourceExhausted());
  EXPECT_TRUE(budget.IsGovernedAbort());
  EXPECT_EQ(budget.ToString(), "Resource exhausted: row budget");

  Status cancelled = Status::Cancelled("client gone");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_TRUE(cancelled.IsGovernedAbort());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: client gone");

  EXPECT_FALSE(Status::Internal("boom").IsGovernedAbort());
  EXPECT_FALSE(Status::OK().IsGovernedAbort());
}

TEST(Status, CopyShares) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  VIEWAUTH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_TRUE(UsesReturnMacro(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  VIEWAUTH_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(Result, ValueAndStatus) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(-1), -1);
  EXPECT_EQ(ok.ValueOr(-1), 5);
}

TEST(Result, AssignOrReturnMacro) {
  auto doubled = DoublePositive(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  EXPECT_TRUE(DoublePositive(0).status().IsInvalidArgument());
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StrUtil, Join) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<int>{1, 2}, "-"), "1-2");
}

TEST(StrUtil, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtil, CaseHelpers) {
  EXPECT_EQ(ToUpperAscii("Acme-1"), "ACME-1");
  EXPECT_EQ(ToLowerAscii("Acme-1"), "acme-1");
  EXPECT_TRUE(EqualsIgnoreCaseAscii("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("WHERE", "wher"));
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("viewauth", "view"));
  EXPECT_FALSE(StartsWith("view", "viewauth"));
  EXPECT_TRUE(EndsWith("viewauth", "auth"));
  EXPECT_FALSE(EndsWith("auth", "viewauth"));
}

TEST(Crc32, KnownVectors) {
  // The standard CRC32 (IEEE 802.3) check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  EXPECT_EQ(Crc32(std::string_view("\0", 1)), 0xD202EF8Du);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "permit SAE to Brown for delete";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = kCrc32Init;
    crc = Crc32Update(crc, std::string_view(data).substr(0, split));
    crc = Crc32Update(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "insert into EMPLOYEE values (Jones, manager, 26000)";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(StrUtil, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(250000), "250,000");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
  EXPECT_EQ(FormatWithCommas(1234567890), "1,234,567,890");
}


// --- ExecContext ----------------------------------------------------------

TEST(ExecContext, UngovernedTicksAreFree) {
  ExecContext ctx;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(ctx.Tick(1, 100));
  }
  EXPECT_TRUE(ctx.ok());
  EXPECT_EQ(ctx.rows_charged(), 0);  // nothing is even counted
  EXPECT_EQ(ctx.checks(), 0);
}

TEST(ExecContext, RowBudgetTrips) {
  ExecLimits limits;
  limits.max_rows = 100;
  ExecContext ctx(limits);
  long long ticked = 0;
  while (ctx.TickRows(1)) {
    ++ticked;
    ASSERT_LE(ticked, 1000) << "budget never tripped";
  }
  EXPECT_EQ(ticked, 100);
  EXPECT_FALSE(ctx.ok());
  EXPECT_TRUE(ctx.status().IsResourceExhausted());
  // Latched: every later tick fails without recharging.
  EXPECT_FALSE(ctx.Tick(1, 1));
  EXPECT_TRUE(ctx.status().IsResourceExhausted());
}

TEST(ExecContext, ByteBudgetTrips) {
  ExecLimits limits;
  limits.max_bytes = 1000;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.TickBytes(999));
  EXPECT_FALSE(ctx.TickBytes(500));
  EXPECT_TRUE(ctx.status().IsResourceExhausted());
}

TEST(ExecContext, DeadlineTrips) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(ctx.CheckNow());
  EXPECT_TRUE(ctx.status().IsDeadlineExceeded());
}

TEST(ExecContext, DeadlineProbedWithinStride) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Row ticks alone must notice the deadline within one check stride.
  long long ticked = 0;
  while (ctx.TickRows(1)) {
    ++ticked;
    ASSERT_LE(ticked, ExecContext::kCheckStride + 1)
        << "deadline not probed within a stride";
  }
  EXPECT_TRUE(ctx.status().IsDeadlineExceeded());
  EXPECT_GE(ctx.checks(), 1);
}

TEST(ExecContext, CancelTripsEvenWithoutLimits) {
  ExecContext ctx;  // ungoverned
  EXPECT_TRUE(ctx.Tick(1, 1));
  ctx.Cancel("client went away");
  EXPECT_FALSE(ctx.Tick(1, 1));
  EXPECT_TRUE(ctx.status().IsCancelled());
  EXPECT_EQ(ctx.status().message(), "client went away");
}

TEST(ExecContext, FirstTripWinsUnderConcurrency) {
  ExecLimits limits;
  limits.max_rows = 1000;
  ExecContext ctx(limits);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ctx] {
      while (ctx.TickRows(1)) {
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(ctx.ok());
  // Exactly one cause is recorded, and it stays recorded.
  EXPECT_TRUE(ctx.status().IsResourceExhausted());
  ctx.Cancel();  // losing trip must not overwrite the first cause
  EXPECT_TRUE(ctx.status().IsResourceExhausted());
}

// --- bounded ThreadPool ---------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedWork) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, BoundedQueueBlocksSubmitterUntilSpace) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  // Occupy the single worker...
  auto blocker = pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0;
  });
  // ...fill the queue to capacity...
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 2; ++i) {
    queued.push_back(pool.Submit([&] { return ++done; }));
  }
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_TRUE(pool.Saturated());
  // ...and verify the next submit blocks until the worker drains a slot.
  std::atomic<bool> submitted{false};
  std::thread submitter([&] {
    auto f = pool.Submit([&] { return ++done; });
    submitted = true;
    f.get();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load());
  release = true;
  submitter.join();
  EXPECT_TRUE(submitted.load());
  blocker.get();
  for (auto& f : queued) f.get();
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, UnboundedByDefault) {
  ThreadPool pool(1);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
  }
}

}  // namespace
}  // namespace viewauth
