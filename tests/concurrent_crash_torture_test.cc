// Concurrent crash-torture tier (run separately by tools/check.sh, and
// under ASan+UBSan/TSan).
//
// N mutator threads insert through a group-committing DurableEngine
// while M retriever threads read, over a FaultInjectingFileSystem whose
// byte budget kills the "machine" at EVERY byte boundary of the mutation
// stream — including mid-batch, between a batch's frames and its commit
// marker. After each simulated crash the log is reopened the way a
// restarted process would (strict first, salvage when the tail is torn)
// and the recovered state must be exactly a prefix of the acknowledged
// commit order:
//
//   * acknowledged durability — every insert whose Execute returned OK
//     is present after recovery (no acknowledged-then-lost commit);
//   * batch atomicity — per mutator thread the recovered ids form a
//     contiguous prefix: a torn batch is never applied partially;
//   * reader isolation — every retrieve observes a committed prefix,
//     never a half-applied or later-rolled-back mutation.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file.h"
#include "engine/durable.h"
#include "engine/engine.h"

namespace viewauth {
namespace {

constexpr int kMutators = 3;
constexpr int kInsertsPerMutator = 5;
constexpr int kRetrievers = 2;

// Mutator t's i-th insert carries id t*100+i, so any id set decomposes
// into per-thread sequences whose contiguity is checkable.
int IdOf(int mutator, int i) { return (mutator + 1) * 100 + i; }

const std::vector<std::string>& SetupStatements() {
  static const std::vector<std::string> stmts = {
      "relation T (I int key)",
      "view ALLT (T.I)",
      "permit ALLT to reader",
  };
  return stmts;
}

// The T ids visible in a rendered retrieve answer (cells like "| 104 |").
std::set<int> IdsInRetrieveOutput(const std::string& out) {
  std::set<int> ids;
  size_t pos = 0;
  while ((pos = out.find("| ", pos)) != std::string::npos) {
    const size_t start = pos + 2;
    const size_t end = out.find(" |", start);
    if (end == std::string::npos) break;
    const std::string cell = out.substr(start, end - start);
    if (!cell.empty() &&
        cell.find_first_not_of("0123456789") == std::string::npos) {
      ids.insert(std::stoi(cell));
    }
    pos = start;
  }
  return ids;
}

// The T ids a recovered engine holds, via its dump script.
std::set<int> IdsInDump(const std::string& dump) {
  std::set<int> ids;
  const std::string needle = "insert into T values (";
  size_t pos = 0;
  while ((pos = dump.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const size_t end = dump.find(')', pos);
    if (end == std::string::npos) break;
    ids.insert(std::stoi(dump.substr(pos, end - pos)));
  }
  return ids;
}

// True when, for every mutator thread, the present ids are a contiguous
// prefix of that thread's insert sequence (no holes = no partially
// applied batch, no reordering).
::testing::AssertionResult PerThreadContiguousPrefix(
    const std::set<int>& ids) {
  for (int t = 0; t < kMutators; ++t) {
    bool gap = false;
    for (int i = 0; i < kInsertsPerMutator; ++i) {
      const bool present = ids.count(IdOf(t, i)) > 0;
      if (!present) {
        gap = true;
      } else if (gap) {
        return ::testing::AssertionFailure()
               << "id " << IdOf(t, i)
               << " is present but an earlier insert of the same thread "
                  "is missing (hole in the prefix)";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ConcurrentCrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "viewauth_cct_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

TEST_F(ConcurrentCrashTortureTest, CrashAtEveryByteBoundaryUnderLoad) {
  // Serial dry run: with every mutation its own batch-of-one this is the
  // byte-maximal encoding, so sweeping up to this total covers every
  // boundary any concurrent interleaving can produce.
  uint64_t setup_bytes = 0;
  uint64_t max_mutation_bytes = 0;
  {
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto durable = DurableEngine::Open(path_, options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (const std::string& stmt : SetupStatements()) {
      ASSERT_TRUE((*durable)->Execute(stmt).ok()) << stmt;
    }
    setup_bytes = fs.bytes_written();
    for (int t = 0; t < kMutators; ++t) {
      for (int i = 0; i < kInsertsPerMutator; ++i) {
        ASSERT_TRUE((*durable)
                        ->Execute("insert into T values (" +
                                  std::to_string(IdOf(t, i)) + ")")
                        .ok());
      }
    }
    max_mutation_bytes = fs.bytes_written() - setup_bytes;
  }
  ASSERT_GT(max_mutation_bytes, 0u);

  for (uint64_t crash_at = 0; crash_at <= max_mutation_bytes; ++crash_at) {
    std::remove(path_.c_str());
    FaultInjectingFileSystem fs(FileSystem::Default());
    DurableOptions options;
    options.fs = &fs;
    auto opened = DurableEngine::Open(path_, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    DurableEngine& durable = **opened;
    for (const std::string& stmt : SetupStatements()) {
      ASSERT_TRUE(durable.Execute(stmt).ok()) << stmt;
    }
    fs.set_crash_after_bytes(static_cast<int64_t>(setup_bytes + crash_at));

    // Mutators record the ids the engine ACKNOWLEDGED; a failed insert
    // ends that thread (the engine is fail-stop after a crash).
    std::vector<std::vector<int>> acked(kMutators);
    std::atomic<bool> done{false};
    std::atomic<int> reader_failures{0};
    std::atomic<int> isolation_violations{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kMutators; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kInsertsPerMutator; ++i) {
          auto out = durable.Execute("insert into T values (" +
                                     std::to_string(IdOf(t, i)) + ")");
          if (!out.ok()) break;
          acked[t].push_back(IdOf(t, i));
        }
      });
    }
    for (int r = 0; r < kRetrievers; ++r) {
      threads.emplace_back([&] {
        while (!done.load(std::memory_order_relaxed)) {
          auto out = durable.Execute("retrieve (T.I) as reader");
          if (!out.ok()) {
            reader_failures.fetch_add(1);
            return;
          }
          // Every snapshot a reader sees is a committed prefix.
          if (!PerThreadContiguousPrefix(IdsInRetrieveOutput(*out))) {
            isolation_violations.fetch_add(1);
            return;
          }
        }
      });
    }
    for (int t = 0; t < kMutators; ++t) threads[t].join();
    done.store(true);
    for (size_t t = kMutators; t < threads.size(); ++t) threads[t].join();

    ASSERT_EQ(reader_failures.load(), 0)
        << "a retrieve failed at crash offset " << crash_at
        << " — readers must keep working through a crash";
    ASSERT_EQ(isolation_violations.load(), 0)
        << "a retrieve observed a non-prefix state at crash offset "
        << crash_at;
    std::set<int> acked_ids;
    for (const auto& per_thread : acked) {
      acked_ids.insert(per_thread.begin(), per_thread.end());
    }
    if (fs.crashed()) {
      EXPECT_TRUE(durable.degraded()) << "crash offset " << crash_at;
    } else {
      EXPECT_EQ(acked_ids.size(),
                static_cast<size_t>(kMutators * kInsertsPerMutator));
    }

    // "Restart the process": strict reopen on the real filesystem; when
    // the crash tore the tail, salvage — and the salvaged log must then
    // satisfy a strict reopen (it ends at a committed batch boundary).
    auto recovered = DurableEngine::Open(path_);
    bool salvaged = false;
    if (!recovered.ok()) {
      DurableOptions salvage;
      salvage.recovery = RecoveryMode::kSalvage;
      recovered = DurableEngine::Open(path_, salvage);
      salvaged = true;
    }
    ASSERT_TRUE(recovered.ok())
        << "crash offset " << crash_at << ": " << recovered.status();
    auto dump = (*recovered)->engine().DumpScript();
    ASSERT_TRUE(dump.ok()) << "crash offset " << crash_at;
    const std::set<int> recovered_ids = IdsInDump(*dump);

    // Acknowledged durability: nothing acked may be lost. (The converse
    // — a batch fully on disk whose waiters saw the crash before the
    // ack — is legal: recovery may extend past the acked set, but only
    // in whole batches.)
    for (int id : acked_ids) {
      ASSERT_TRUE(recovered_ids.count(id) > 0)
          << "crash offset " << crash_at << ": acknowledged insert " << id
          << " lost after " << (salvaged ? "salvage" : "strict")
          << " recovery (report: "
          << (*recovered)->recovery_report().ToString() << ")";
    }
    EXPECT_TRUE(PerThreadContiguousPrefix(recovered_ids))
        << "crash offset " << crash_at << " after "
        << (salvaged ? "salvage" : "strict") << " recovery";

    if (salvaged) {
      auto strict_again = DurableEngine::Open(path_);
      ASSERT_TRUE(strict_again.ok())
          << "crash offset " << crash_at
          << ": salvage did not truncate to a committed boundary: "
          << strict_again.status();
    }
  }
}

}  // namespace
}  // namespace viewauth
