// Property tests for the authorization pipeline:
//   * soundness — no delivered cell exceeds what some permitted view
//     exposes (checked against a brute-force oracle on randomized
//     single-relation scenarios);
//   * monotonicity — each Section 4.2 refinement only ever adds
//     permitted cells;
//   * data-independence — the mask A' is a function of the request and
//     the meta-relations, never of the data (Figure 2's structure).

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "authz/authorizer.h"
#include "calculus/conjunctive_query.h"
#include "meta/view_store.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

// One randomized scenario over R(A,B,C,D).
struct Scenario {
  DatabaseInstance db;
  std::unique_ptr<ViewCatalog> catalog;
  // Per view: the target column indices and conditions in raw form, for
  // the oracle.
  struct OracleView {
    std::set<int> target_columns;
    std::vector<std::pair<int, std::pair<Comparator, int64_t>>> conditions;
  };
  std::vector<OracleView> views;  // all granted to user "u"
};

constexpr const char* kColumnNames[] = {"A", "B", "C", "D"};

Scenario MakeScenario(std::mt19937& rng) {
  Scenario s;
  std::uniform_int_distribution<int> val(0, 6);
  std::uniform_int_distribution<int> rows(1, 10);
  std::uniform_int_distribution<int> col(0, 3);
  std::uniform_int_distribution<int> ncond(0, 2);
  std::uniform_int_distribution<int> nviews(1, 3);
  std::uniform_int_distribution<int> opd(0, 5);

  RelationSchema schema =
      RelationSchema::Make("R",
                           {{"A", ValueType::kInt64},
                            {"B", ValueType::kInt64},
                            {"C", ValueType::kInt64},
                            {"D", ValueType::kInt64}})
          .value();
  EXPECT_TRUE(s.db.CreateRelation(schema).ok());
  for (int i = rows(rng); i > 0; --i) {
    EXPECT_TRUE(s.db.Insert("R", Tuple({Value::Int64(val(rng)),
                                        Value::Int64(val(rng)),
                                        Value::Int64(val(rng)),
                                        Value::Int64(val(rng))}))
                    .ok());
  }
  s.catalog = std::make_unique<ViewCatalog>(&s.db.schema());

  const int view_count = nviews(rng);
  for (int v = 0; v < view_count; ++v) {
    Scenario::OracleView oracle;
    // Non-empty random target set.
    while (oracle.target_columns.empty()) {
      for (int c = 0; c < 4; ++c) {
        if (rng() % 2 == 0) oracle.target_columns.insert(c);
      }
    }
    std::vector<AttributeRef> targets;
    for (int c : oracle.target_columns) {
      targets.push_back(AttributeRef{"R", 1, kColumnNames[c]});
    }
    std::vector<Condition> conditions;
    for (int i = ncond(rng); i > 0; --i) {
      int c = col(rng);
      Comparator op = static_cast<Comparator>(opd(rng));
      int64_t bound = val(rng);
      oracle.conditions.push_back({c, {op, bound}});
      Condition cond;
      cond.lhs = AttributeRef{"R", 1, kColumnNames[c]};
      cond.op = op;
      cond.rhs = ConditionOperand::Const(Value::Int64(bound));
      conditions.push_back(std::move(cond));
    }
    std::string name = "V" + std::to_string(v);
    auto query = ConjunctiveQuery::Build(s.db.schema(), name, targets,
                                         conditions);
    if (!query.ok()) continue;  // contradictory view: skip
    if (!s.catalog->DefineView(name, *query).ok()) continue;
    EXPECT_TRUE(s.catalog->Permit(name, "u").ok());
    s.views.push_back(std::move(oracle));
  }
  return s;
}

// Builds a random query over R; returns its targets/conditions too.
struct RandomQuery {
  ConjunctiveQuery query;
  std::vector<int> target_columns;
  std::vector<std::pair<int, std::pair<Comparator, int64_t>>> conditions;
};

std::optional<RandomQuery> MakeQuery(const DatabaseSchema& schema,
                                     std::mt19937& rng) {
  std::uniform_int_distribution<int> val(0, 6);
  std::uniform_int_distribution<int> ncond(0, 2);
  std::uniform_int_distribution<int> opd(0, 5);

  std::set<int> target_set;
  while (target_set.empty()) {
    for (int c = 0; c < 4; ++c) {
      if (rng() % 2 == 0) target_set.insert(c);
    }
  }
  std::vector<AttributeRef> targets;
  std::vector<int> target_columns(target_set.begin(), target_set.end());
  for (int c : target_columns) {
    targets.push_back(AttributeRef{"R", 1, kColumnNames[c]});
  }
  std::vector<Condition> conditions;
  std::vector<std::pair<int, std::pair<Comparator, int64_t>>> raw;
  std::uniform_int_distribution<int> col(0, 3);
  for (int i = ncond(rng); i > 0; --i) {
    int c = col(rng);
    Comparator op = static_cast<Comparator>(opd(rng));
    int64_t bound = val(rng);
    raw.push_back({c, {op, bound}});
    Condition cond;
    cond.lhs = AttributeRef{"R", 1, kColumnNames[c]};
    cond.op = op;
    cond.rhs = ConditionOperand::Const(Value::Int64(bound));
    conditions.push_back(std::move(cond));
  }
  auto query =
      ConjunctiveQuery::Build(schema, "q", targets, conditions);
  if (!query.ok()) return std::nullopt;
  return RandomQuery{std::move(*query), std::move(target_columns),
                     std::move(raw)};
}

bool RowSatisfiesRaw(
    const Tuple& row,
    const std::vector<std::pair<int, std::pair<Comparator, int64_t>>>&
        conditions) {
  for (const auto& [column, pred] : conditions) {
    if (!row.at(column).Satisfies(pred.first, Value::Int64(pred.second))) {
      return false;
    }
  }
  return true;
}

long long CountDeliveredCells(const Relation& relation) {
  long long count = 0;
  for (const Tuple& row : relation.rows()) {
    for (const Value& value : row.values()) {
      if (!value.is_null()) ++count;
    }
  }
  return count;
}

class AuthzPropertyTest : public ::testing::TestWithParam<int> {};

// Soundness oracle (self-joins off): a delivered cell (answer row, column
// c) requires a base row that (a) projects onto the answer row, (b)
// satisfies the query, and (c) satisfies some permitted view projecting c.
TEST_P(AuthzPropertyTest, NoCellBeyondPermittedViews) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int round = 0; round < 15; ++round) {
    Scenario s = MakeScenario(rng);
    auto rq = MakeQuery(s.db.schema(), rng);
    if (!rq.has_value()) continue;
    Authorizer authorizer(&s.db, s.catalog.get());
    AuthorizationOptions options;
    options.self_joins = false;  // the oracle models single views only
    auto result = authorizer.Retrieve("u", rq->query, options);
    ASSERT_TRUE(result.ok()) << result.status();

    const Relation* base = s.db.GetRelation("R").value();
    for (const Tuple& answer_row : result->answer.rows()) {
      for (size_t i = 0; i < rq->target_columns.size(); ++i) {
        if (answer_row.at(static_cast<int>(i)).is_null()) continue;
        const int column = rq->target_columns[i];
        bool justified = false;
        for (const Tuple& base_row : base->rows()) {
          // (a) projection match on every non-null answer cell.
          bool projects = true;
          for (size_t j = 0; j < rq->target_columns.size(); ++j) {
            const Value& cell = answer_row.at(static_cast<int>(j));
            if (cell.is_null()) continue;
            if (!(base_row.at(rq->target_columns[j]) == cell)) {
              projects = false;
              break;
            }
          }
          if (!projects) continue;
          // (b) the query's own conditions.
          if (!RowSatisfiesRaw(base_row, rq->conditions)) continue;
          // (c) some permitted view exposes the column on this row.
          for (const Scenario::OracleView& view : s.views) {
            if (!view.target_columns.contains(column)) continue;
            if (RowSatisfiesRaw(base_row, view.conditions)) {
              justified = true;
              break;
            }
          }
          if (justified) break;
        }
        EXPECT_TRUE(justified)
            << "cell in column " << kColumnNames[column]
            << " of row " << answer_row.ToString()
            << " is not justified by any permitted view";
      }
    }
  }
}

// Each refinement can only add delivered cells, never remove any.
TEST_P(AuthzPropertyTest, RefinementsAreMonotone) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  for (int round = 0; round < 10; ++round) {
    Scenario s = MakeScenario(rng);
    auto rq = MakeQuery(s.db.schema(), rng);
    if (!rq.has_value()) continue;
    Authorizer authorizer(&s.db, s.catalog.get());

    AuthorizationOptions base;
    base.four_case = false;
    base.padding = false;
    base.self_joins = false;
    base.drop_fully_masked_rows = false;
    auto base_result = authorizer.Retrieve("u", rq->query, base);
    ASSERT_TRUE(base_result.ok());

    for (int refinement = 0; refinement < 3; ++refinement) {
      AuthorizationOptions refined = base;
      if (refinement == 0) refined.four_case = true;
      if (refinement == 1) refined.padding = true;
      if (refinement == 2) refined.self_joins = true;
      auto refined_result = authorizer.Retrieve("u", rq->query, refined);
      ASSERT_TRUE(refined_result.ok());
      EXPECT_GE(CountDeliveredCells(refined_result->answer),
                CountDeliveredCells(base_result->answer))
          << "refinement " << refinement << " lost cells";
    }
  }
}

// The mask is derived from the request and the stored views alone: data
// changes must not affect it (the structure behind Figure 2).
TEST_P(AuthzPropertyTest, MaskIsDataIndependent) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
  Scenario s = MakeScenario(rng);
  auto rq = MakeQuery(s.db.schema(), rng);
  if (!rq.has_value()) return;
  Authorizer authorizer(&s.db, s.catalog.get());

  auto mask_before = authorizer.DeriveMask("u", rq->query);
  ASSERT_TRUE(mask_before.ok());
  ASSERT_TRUE(s.db.Insert("R", Tuple({Value::Int64(99), Value::Int64(99),
                                      Value::Int64(99), Value::Int64(99)}))
                  .ok());
  auto mask_after = authorizer.DeriveMask("u", rq->query);
  ASSERT_TRUE(mask_after.ok());

  auto keys = [](const MetaRelation& mask) {
    std::multiset<std::string> out;
    for (const MetaTuple& tuple : mask.tuples()) {
      out.insert(tuple.StructuralKey());
    }
    return out;
  };
  EXPECT_EQ(keys(*mask_before), keys(*mask_after));
}

// Masked answers never invent data: every delivered cell appears in the
// raw answer at the same position.
TEST_P(AuthzPropertyTest, MaskedIsSubsetOfRaw) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 3000);
  for (int round = 0; round < 10; ++round) {
    Scenario s = MakeScenario(rng);
    auto rq = MakeQuery(s.db.schema(), rng);
    if (!rq.has_value()) continue;
    Authorizer authorizer(&s.db, s.catalog.get());
    auto result = authorizer.Retrieve("u", rq->query);
    ASSERT_TRUE(result.ok());
    for (const Tuple& row : result->answer.rows()) {
      bool matched = false;
      for (const Tuple& raw : result->raw_answer.rows()) {
        bool compatible = true;
        for (int i = 0; i < row.arity(); ++i) {
          if (!row.at(i).is_null() && !(row.at(i) == raw.at(i))) {
            compatible = false;
            break;
          }
        }
        if (compatible) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << row.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuthzPropertyTest, ::testing::Range(1, 9));

// A user's own permitted view, asked verbatim as a query, comes back with
// full access (the paper's "Q is a view of V" case).
TEST(AuthzInvariants, OwnViewIsFullyGranted) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
      "PROJECT.BUDGET) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
      "and PROJECT.BUDGET >= 250000");
  auto result = authorizer.Retrieve("Klein", query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->denied);
  EXPECT_TRUE(result->full_access);
}

// The meta-relation cache must never serve stale results across
// view/permission mutations.
TEST(AuthzInvariants, CacheInvalidatesOnCatalogMutation) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)");

  auto before = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->denied);  // PSA covers the request (warm the cache)

  ASSERT_TRUE(fixture.catalog().Deny("PSA", "Brown").ok());
  auto after_deny = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(after_deny.ok());
  EXPECT_TRUE(after_deny->denied);

  ASSERT_TRUE(fixture.catalog().Permit("PSA", "Brown").ok());
  auto after_regrant = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(after_regrant.ok());
  EXPECT_FALSE(after_regrant->denied);
  EXPECT_TRUE(after_regrant->answer.SameTuples(before->answer));
}

TEST(AuthzInvariants, NoViewsMeansDenied) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query("retrieve (EMPLOYEE.NAME)");
  auto result = authorizer.Retrieve("Stranger", query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->denied);
  EXPECT_EQ(result->answer.size(), 0);
}

}  // namespace
}  // namespace viewauth
