// Unit tests for self-join inference (paper Section 4.2 / Example 3).

#include "meta/self_join.h"

#include <gtest/gtest.h>

#include "meta/view_store.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

RelationSchema EmployeeSchema() {
  return RelationSchema::Make("EMPLOYEE",
                              {{"NAME", ValueType::kString},
                               {"TITLE", ValueType::kString},
                               {"SALARY", ValueType::kInt64}},
                              {0})
      .value();
}

MetaTuple Sae() {
  // (*, _, *) — names and salaries of all employees.
  MetaTuple t;
  t.cells().push_back(MetaCell::Blank(true));
  t.cells().push_back(MetaCell::Blank(false));
  t.cells().push_back(MetaCell::Blank(true));
  t.views().insert("SAE");
  t.origin_atoms().insert(1);
  return t;
}

MetaTuple Est(AtomId atom) {
  // (*, x4*, _) — one of EST's two tuples.
  MetaTuple t;
  t.cells().push_back(MetaCell::Blank(true));
  t.cells().push_back(MetaCell::Var(4, true));
  t.cells().push_back(MetaCell::Blank(false));
  t.views().insert("EST");
  t.var_atoms()[4] = {10, 11};
  t.origin_atoms().insert(atom);
  return t;
}

TEST(SelfJoin, PaperExample3Pair) {
  auto joined = SelfJoinPair(Sae(), Est(10), EmployeeSchema());
  ASSERT_TRUE(joined.has_value());
  // (*, x4*, *) with views {EST, SAE} and the union of provenance.
  EXPECT_TRUE(joined->cells()[0].is_blank());
  EXPECT_TRUE(joined->cells()[0].projected);
  ASSERT_EQ(joined->cells()[1].kind, CellKind::kVar);
  EXPECT_EQ(joined->cells()[1].var, 4);
  EXPECT_TRUE(joined->cells()[1].projected);
  EXPECT_TRUE(joined->cells()[2].is_blank());
  EXPECT_TRUE(joined->cells()[2].projected);
  EXPECT_EQ(joined->ViewLabel(), "EST,SAE");
  EXPECT_TRUE(joined->origin_atoms().contains(1));
  EXPECT_TRUE(joined->origin_atoms().contains(10));
}

TEST(SelfJoin, SameViewPairsAreSkipped) {
  EXPECT_FALSE(SelfJoinPair(Est(10), Est(11), EmployeeSchema()).has_value());
}

TEST(SelfJoin, RequiresKeyProjectedOnBothSides) {
  MetaTuple no_key = Sae();
  no_key.cells()[0].projected = false;  // NAME (the key) not projected
  EXPECT_FALSE(SelfJoinPair(no_key, Est(10), EmployeeSchema()).has_value());

  // A relation without a declared key yields nothing.
  RelationSchema keyless =
      RelationSchema::Make("E2",
                           {{"NAME", ValueType::kString},
                            {"TITLE", ValueType::kString},
                            {"SALARY", ValueType::kInt64}})
          .value();
  EXPECT_FALSE(SelfJoinPair(Sae(), Est(10), keyless).has_value());
}

TEST(SelfJoin, ContradictoryConstantsYieldNothing) {
  MetaTuple acme = Sae();
  acme.views().clear();
  acme.views().insert("V1");
  acme.cells()[1] = MetaCell::Const(Value::String("manager"), false);
  MetaTuple apex = Sae();
  apex.views().clear();
  apex.views().insert("V2");
  apex.cells()[1] = MetaCell::Const(Value::String("engineer"), false);
  EXPECT_FALSE(SelfJoinPair(acme, apex, EmployeeSchema()).has_value());

  // Equal constants join fine.
  apex.cells()[1] = MetaCell::Const(Value::String("manager"), true);
  auto joined = SelfJoinPair(acme, apex, EmployeeSchema());
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->cells()[1].kind, CellKind::kConst);
  EXPECT_TRUE(joined->cells()[1].projected);  // either side's star
}

TEST(SelfJoin, ConstantPinsVariable) {
  MetaTuple constant = Sae();
  constant.views().clear();
  constant.views().insert("V1");
  constant.cells()[1] = MetaCell::Const(Value::String("manager"), false);
  auto joined = SelfJoinPair(constant, Est(10), EmployeeSchema());
  ASSERT_TRUE(joined.has_value());
  ASSERT_EQ(joined->cells()[1].kind, CellKind::kVar);
  auto pinned = joined->constraints().PinnedConstant(joined->cells()[1].var);
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(*pinned, Value::String("manager"));
}

TEST(SelfJoin, VariablePairsAreEquated) {
  MetaTuple a = Est(10);
  MetaTuple b = Est(11);
  b.views().clear();
  b.views().insert("OTHER");
  // Rename b's variable to 7 to simulate a different view's variable.
  b.cells()[1] = MetaCell::Var(7, true);
  b.var_atoms().clear();
  b.var_atoms()[7] = {11};
  auto joined = SelfJoinPair(a, b, EmployeeSchema());
  ASSERT_TRUE(joined.has_value());
  EXPECT_TRUE(joined->constraints().AreEqual(4, 7));
}

TEST(SelfJoin, WithSelfJoinsExtendsRelation) {
  MetaRelation rel(EmployeeSchema().attributes());
  rel.Add(Sae());
  rel.Add(Est(10));
  rel.Add(Est(11));
  MetaRelation extended = WithSelfJoins(rel, EmployeeSchema());
  // 3 originals + SAE x EST(10) + SAE x EST(11): the two joins differ in
  // provenance, so both are kept.
  EXPECT_EQ(extended.size(), 5);
}

TEST(SelfJoin, MultipleRoundsJoinThreeViews) {
  // Three single-column-ish views over (NAME, TITLE, SALARY): names+titles,
  // names+salaries, names only with a restriction. Two rounds combine all.
  MetaTuple nt;
  nt.cells() = {MetaCell::Blank(true), MetaCell::Blank(true),
                MetaCell::Blank(false)};
  nt.views().insert("NT");
  MetaTuple ns;
  ns.cells() = {MetaCell::Blank(true), MetaCell::Blank(false),
                MetaCell::Blank(true)};
  ns.views().insert("NS");
  MetaTuple nm;
  nm.cells() = {MetaCell::Blank(true),
                MetaCell::Const(Value::String("manager"), false),
                MetaCell::Blank(false)};
  nm.views().insert("NM");

  MetaRelation rel(EmployeeSchema().attributes());
  rel.Add(nt);
  rel.Add(ns);
  rel.Add(nm);

  MetaRelation one_round = WithSelfJoins(rel, EmployeeSchema(), 1);
  MetaRelation two_rounds = WithSelfJoins(rel, EmployeeSchema(), 2);
  EXPECT_GT(two_rounds.size(), one_round.size());
  // The triple join (all columns + manager restriction) appears only
  // after round 2.
  bool found_triple = false;
  for (const MetaTuple& t : two_rounds.tuples()) {
    if (t.views().size() == 3) found_triple = true;
  }
  EXPECT_TRUE(found_triple);
}

// Integration: the paper database's pruned EMPLOYEE' for Brown includes
// the EST,SAE self-joins the worked Example 3 shows.
TEST(SelfJoin, PaperDatabaseIntegration) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  auto pruned = authorizer.PrunedMetaRelation("Brown", query, 0);
  ASSERT_TRUE(pruned.ok());
  int est_sae = 0;
  for (const MetaTuple& t : pruned->tuples()) {
    if (t.views().contains("EST") && t.views().contains("SAE")) ++est_sae;
  }
  EXPECT_EQ(est_sae, 2);  // one per EST tuple
}

}  // namespace
}  // namespace viewauth
