// Integration tests reproducing the paper's Section 5 examples end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "authz/authorizer.h"
#include "tests/test_util.h"

namespace viewauth {
namespace {

using testing_util::PaperDatabase;

// Example 1: Brown retrieves names and sponsors of large projects. The
// mask must be (*, Acme*) and the inferred permit restricted to Acme.
TEST(PaperExamples, Example1BrownLargeProjects) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000");

  auto result = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->denied);
  EXPECT_FALSE(result->full_access);

  // The raw answer holds bq-45/Acme and sv-72/Apex; only the Acme row is
  // delivered (the Apex row is fully masked and dropped).
  EXPECT_EQ(result->raw_answer.size(), 2);
  ASSERT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("bq-45"), Value::String("Acme")})));

  // Mask: one tuple, both columns projected, SPONSOR = Acme.
  ASSERT_EQ(result->mask.size(), 1);
  const MetaTuple& mask = result->mask.tuples()[0];
  EXPECT_TRUE(mask.cells()[0].is_blank());
  EXPECT_TRUE(mask.cells()[0].projected);
  EXPECT_EQ(mask.cells()[1].kind, CellKind::kConst);
  EXPECT_EQ(mask.cells()[1].constant, Value::String("Acme"));
  EXPECT_TRUE(mask.cells()[1].projected);

  ASSERT_EQ(result->permits.size(), 1u);
  EXPECT_EQ(result->permits[0].ToString(),
            "permit (NUMBER, SPONSOR) where SPONSOR = Acme");
}

// Example 2: Klein retrieves names and salaries of engineers on very
// large projects. Only NAME is permitted; SALARY is withheld.
TEST(PaperExamples, Example2KleinEngineerSalaries) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");

  auto result = authorizer.Retrieve("Klein", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->denied);
  EXPECT_FALSE(result->full_access);

  // Brown (engineer, sv-72 at 450k) matches; salary must be masked.
  ASSERT_EQ(result->answer.size(), 1);
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Brown"), Value::Null()})));

  // Mask: NAME projected, SALARY not, no residual selection.
  ASSERT_EQ(result->mask.size(), 1);
  const MetaTuple& mask = result->mask.tuples()[0];
  EXPECT_TRUE(mask.cells()[0].is_blank());
  EXPECT_TRUE(mask.cells()[0].projected);
  EXPECT_TRUE(mask.cells()[1].is_blank());
  EXPECT_FALSE(mask.cells()[1].projected);
  EXPECT_EQ(mask.constraints().atom_count(), 0);

  ASSERT_EQ(result->permits.size(), 1u);
  EXPECT_EQ(result->permits[0].ToString(), "permit (NAME)");
}

// Example 2's intermediate stage: after the product and the dangling
// pruning, exactly one combined view tuple remains (the full ELP tuple);
// the padded ELP-fragments and all EST combinations dangle.
TEST(PaperExamples, Example2ProductPruning) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000");

  MetaRelation product_stage;
  auto mask = authorizer.DeriveMask("Klein", query, AuthorizationOptions{},
                                    &product_stage);
  ASSERT_TRUE(mask.ok()) << mask.status().ToString();

  // Count tuples in the pruned product that involve all three ELP atoms.
  int full_elp = 0;
  for (const MetaTuple& tuple : product_stage.tuples()) {
    if (tuple.views().contains("ELP") && tuple.origin_atoms().size() >= 3) {
      ++full_elp;
    }
  }
  EXPECT_GE(full_elp, 1);
  // No tuple with a dangling variable survives.
  for (const MetaTuple& tuple : product_stage.tuples()) {
    EXPECT_FALSE(tuple.HasDanglingVariable());
  }
}

// Example 3: Brown retrieves names and salaries of same-title employee
// pairs. The SAE+EST self-join grants the entire answer.
TEST(PaperExamples, Example3BrownSameTitlePairs) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, "
      "EMPLOYEE:2.SALARY) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");

  auto result = authorizer.Retrieve("Brown", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->denied);
  EXPECT_TRUE(result->full_access);
  EXPECT_TRUE(result->permits.empty());

  // Every employee matches only itself (all titles unique): 3 rows, none
  // masked.
  EXPECT_EQ(result->answer.size(), 3);
  EXPECT_TRUE(result->answer.SameTuples(result->raw_answer));
  EXPECT_TRUE(result->answer.Contains(
      Tuple({Value::String("Jones"), Value::Int64(26000),
             Value::String("Jones"), Value::Int64(26000)})));
}

// Example 3 without self-joins: Brown gets names (EST) and each
// employee's salary only via... nothing — EST projects no salary and SAE
// has no pair constraint, so salaries are masked.
TEST(PaperExamples, Example3WithoutSelfJoins) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, "
      "EMPLOYEE:2.SALARY) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");

  AuthorizationOptions options;
  options.self_joins = false;
  auto result = authorizer.Retrieve("Brown", query, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->full_access);
  // Names are deliverable through EST x EST; salaries are not.
  for (const Tuple& row : result->answer.rows()) {
    EXPECT_FALSE(row.at(0).is_null());
    EXPECT_TRUE(row.at(1).is_null());
    EXPECT_FALSE(row.at(2).is_null());
    EXPECT_TRUE(row.at(3).is_null());
  }
  EXPECT_EQ(result->answer.size(), 3);
}

// Klein's Example-1-style query is denied outright: PSA is not granted
// to Klein and ELP does not cover a PROJECT-only query.
TEST(PaperExamples, KleinDeniedOnProjectOnlyQuery) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000");

  auto result = authorizer.Retrieve("Klein", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->denied);
  EXPECT_EQ(result->answer.size(), 0);
}

// A query entirely within ELP: Klein lists names of employees on
// projects with budgets over 500k. The request is a view of ELP, so the
// whole (empty-but-authorized) structure flows through.
TEST(PaperExamples, KleinWithinElp) {
  PaperDatabase fixture;
  Authorizer authorizer = fixture.MakeAuthorizer();
  ConjunctiveQuery query = fixture.Query(
      "retrieve (EMPLOYEE.NAME) "
      "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 400000");

  auto result = authorizer.Retrieve("Klein", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->denied);
  // sv-72 (450k) employees: Jones and Brown — both delivered.
  EXPECT_EQ(result->answer.size(), 2);
  EXPECT_TRUE(result->full_access);
}

}  // namespace
}  // namespace viewauth
