// Unit tests for the ASCII table renderer.

#include "engine/table_printer.h"

#include <gtest/gtest.h>

namespace viewauth {
namespace {

Relation SampleRelation() {
  RelationSchema schema =
      RelationSchema::Make("T", {{"NAME", ValueType::kString},
                                 {"SALARY", ValueType::kInt64}})
          .value();
  Relation rel(schema);
  EXPECT_TRUE(rel.Insert(Tuple({Value::String("Jones"),
                                Value::Int64(26000)}))
                  .ok());
  EXPECT_TRUE(
      rel.Insert(Tuple({Value::String("Brown"), Value::Null()})).ok());
  return rel;
}

TEST(TablePrinter, BasicLayout) {
  std::string out = PrintRelation(SampleRelation());
  // Header, separator, two sorted rows.
  EXPECT_NE(out.find("| NAME "), std::string::npos);
  EXPECT_NE(out.find("| SALARY"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
  EXPECT_NE(out.find("26,000"), std::string::npos);  // thousands separators
  EXPECT_NE(out.find("| -"), std::string::npos);     // NULL cell
  // Sorted: Brown before Jones.
  EXPECT_LT(out.find("Brown"), out.find("Jones"));
}

TEST(TablePrinter, Options) {
  TablePrintOptions options;
  options.thousands_separators = false;
  options.null_text = "(withheld)";
  options.caption = "salaries:";
  std::string out = PrintRelation(SampleRelation(), options);
  EXPECT_NE(out.find("salaries:"), std::string::npos);
  EXPECT_NE(out.find("26000"), std::string::npos);
  EXPECT_EQ(out.find("26,000"), std::string::npos);
  EXPECT_NE(out.find("(withheld)"), std::string::npos);
}

TEST(TablePrinter, StringsPrintRaw) {
  RelationSchema schema =
      RelationSchema::Make("T", {{"CELL", ValueType::kString}}).value();
  Relation rel(schema);
  ASSERT_TRUE(rel.Insert(Tuple({Value::String("x1*")})).ok());
  std::string out = PrintRelation(rel);
  EXPECT_NE(out.find("| x1* "), std::string::npos);
  EXPECT_EQ(out.find("'x1*'"), std::string::npos);  // no quoting in tables
}

TEST(TablePrinter, GenericTable) {
  std::string out = PrintTable({"A", "LONG_HEADER"},
                               {{"1", "2"}, {"333", "4"}}, "caption");
  EXPECT_NE(out.find("caption"), std::string::npos);
  EXPECT_NE(out.find("| A   | LONG_HEADER |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4           |"), std::string::npos);
  // Ragged rows are padded.
  std::string ragged = PrintTable({"A", "B"}, {{"only"}});
  EXPECT_NE(ragged.find("| only |"), std::string::npos);
}

TEST(TablePrinter, EmptyRelation) {
  RelationSchema schema =
      RelationSchema::Make("T", {{"A", ValueType::kInt64}}).value();
  Relation rel(schema);
  std::string out = PrintRelation(rel);
  EXPECT_NE(out.find("| A"), std::string::npos);
  // Header + separator only.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace viewauth
