// Tests for update permissions (paper conclusion (1)): insert and
// delete authorization through update-mode views.

#include "authz/update_guard.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace viewauth {
namespace {

class UpdateGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
      insert into PROJECT values (p1, Acme, 100000)
      insert into PROJECT values (p2, Acme, 400000)
      insert into PROJECT values (p3, Apex, 250000)

      view ACME_FULL (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
        where PROJECT.SPONSOR = Acme
      view SMALL (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
        where PROJECT.BUDGET < 200000
      view NUMBERS_ONLY (PROJECT.NUMBER)

      permit ACME_FULL to editor for insert
      permit SMALL to editor for delete
      permit NUMBERS_ONLY to narrow for insert
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  int ProjectRows() {
    return (*engine_.db().GetRelation("PROJECT"))->size();
  }

  Engine engine_;
};

TEST_F(UpdateGuardTest, InsertWithinWindowSucceeds) {
  auto out = engine_.Execute(
      "insert into PROJECT values (p9, Acme, 900000) as editor");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(ProjectRows(), 4);
}

TEST_F(UpdateGuardTest, InsertOutsideWindowDenied) {
  auto out = engine_.Execute(
      "insert into PROJECT values (p9, Apex, 900000) as editor");
  EXPECT_TRUE(out.status().IsPermissionDenied());
  EXPECT_EQ(ProjectRows(), 3);
}

TEST_F(UpdateGuardTest, InsertRequiresFullWidthView) {
  // NUMBERS_ONLY projects one attribute: no whole-row window.
  auto out = engine_.Execute(
      "insert into PROJECT values (p9, Acme, 1) as narrow");
  EXPECT_TRUE(out.status().IsPermissionDenied());
}

TEST_F(UpdateGuardTest, InsertModeIsSeparateFromRetrieve) {
  // The insert grant does not let the editor retrieve.
  auto out = engine_.Execute("retrieve (PROJECT.NUMBER) as editor");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("permission denied"), std::string::npos);
}

TEST_F(UpdateGuardTest, AdministrativeStatementsBypass) {
  EXPECT_TRUE(
      engine_.Execute("insert into PROJECT values (p9, Zeus, 1)").ok());
  auto removed = engine_.Execute("delete from PROJECT where "
                                 "PROJECT.SPONSOR = Zeus");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, "deleted 1 row(s)");
}

TEST_F(UpdateGuardTest, DeleteWithinWindow) {
  auto out = engine_.Execute(
      "delete from PROJECT where PROJECT.BUDGET < 150000 as editor");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "deleted 1 row(s)");  // p1 (100k, inside SMALL)
  EXPECT_EQ(ProjectRows(), 2);
}

TEST_F(UpdateGuardTest, DeleteWithheldRowsSurvive) {
  // Matching rows outside the SMALL window stay: p2 (400k) and p3 (250k)
  // match SPONSOR-free budget predicate >= 200000 but are not deletable.
  auto out = engine_.Execute(
      "delete from PROJECT where PROJECT.BUDGET >= 100000 as editor");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "deleted 1 row(s) (2 withheld by permissions)");
  EXPECT_EQ(ProjectRows(), 2);
}

TEST_F(UpdateGuardTest, DeletePredicateMustBeCovered) {
  // Grant a delete window that hides SPONSOR; a sponsor-based predicate
  // would leak through the deletion outcome and is rejected.
  auto setup = engine_.ExecuteScript(R"(
    view NO_SPONSOR (PROJECT.NUMBER, PROJECT.BUDGET)
    permit NO_SPONSOR to trimmer for delete
  )");
  ASSERT_TRUE(setup.ok());
  auto out = engine_.Execute(
      "delete from PROJECT where PROJECT.SPONSOR = Acme as trimmer");
  EXPECT_TRUE(out.status().IsPermissionDenied());
  EXPECT_EQ(ProjectRows(), 3);

  // A budget-based predicate is covered and works.
  auto ok = engine_.Execute(
      "delete from PROJECT where PROJECT.BUDGET > 300000 as trimmer");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(*ok, "deleted 1 row(s)");
}

TEST_F(UpdateGuardTest, DeleteWithoutAnyGrantDenied) {
  auto out = engine_.Execute(
      "delete from PROJECT where PROJECT.BUDGET > 0 as stranger");
  EXPECT_TRUE(out.status().IsPermissionDenied());
}

TEST_F(UpdateGuardTest, DenyForModeRemovesOnlyThatMode) {
  ASSERT_TRUE(engine_.Execute("permit SMALL to editor for insert").ok());
  ASSERT_TRUE(engine_.Execute("deny SMALL to editor for delete").ok());
  // Insert via SMALL still works...
  EXPECT_TRUE(engine_
                  .Execute("insert into PROJECT values (p8, Any, 1000) "
                           "as editor")
                  .ok());
  // ...but deletes are gone.
  auto out = engine_.Execute(
      "delete from PROJECT where PROJECT.BUDGET < 150000 as editor");
  EXPECT_TRUE(out.status().IsPermissionDenied());
}

class ModifyGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto setup = engine_.ExecuteScript(R"(
      relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
      insert into EMPLOYEE values (Jones, manager, 26000)
      insert into EMPLOYEE values (Smith, technician, 22000)
      insert into EMPLOYEE values (Brown, engineer, 32000)

      view JUNIOR (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
        where EMPLOYEE.SALARY < 30000
      permit JUNIOR to hr for modify
    )");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  Value SalaryOf(const char* name) {
    const Relation* rel = *engine_.db().GetRelation("EMPLOYEE");
    for (const Tuple& row : rel->rows()) {
      if (row.at(0) == Value::String(name)) return row.at(2);
    }
    return Value::Null();
  }

  Engine engine_;
};

TEST_F(ModifyGuardTest, ModifyInsideWindow) {
  auto out = engine_.Execute(
      "modify EMPLOYEE set SALARY = 23000 where EMPLOYEE.NAME = Smith "
      "as hr");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "modified 1 row(s)");
  EXPECT_EQ(SalaryOf("Smith"), Value::Int64(23000));
}

TEST_F(ModifyGuardTest, ModifyMayNotLeaveTheWindow) {
  // Raising Smith's salary to 40k would move the row outside JUNIOR.
  auto out = engine_.Execute(
      "modify EMPLOYEE set SALARY = 40000 where EMPLOYEE.NAME = Smith "
      "as hr");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "modified 0 row(s) (1 withheld by permissions)");
  EXPECT_EQ(SalaryOf("Smith"), Value::Int64(22000));
}

TEST_F(ModifyGuardTest, RowsOutsideWindowAreWithheld) {
  // Brown (32k) is outside JUNIOR: a broad raise touches only the
  // juniors.
  auto out = engine_.Execute(
      "modify EMPLOYEE set TITLE = associate where EMPLOYEE.SALARY > 0 "
      "as hr");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "modified 2 row(s) (1 withheld by permissions)");
}

TEST_F(ModifyGuardTest, NoModifyGrantDenied) {
  auto out = engine_.Execute(
      "modify EMPLOYEE set SALARY = 1 where EMPLOYEE.NAME = Smith "
      "as stranger");
  EXPECT_TRUE(out.status().IsPermissionDenied());
}

TEST_F(ModifyGuardTest, AdministrativeModify) {
  auto out = engine_.Execute(
      "modify EMPLOYEE set SALARY = 50000 where EMPLOYEE.NAME = Brown");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "modified 1 row(s)");
  EXPECT_EQ(SalaryOf("Brown"), Value::Int64(50000));
}

TEST_F(ModifyGuardTest, KeyConflictsRollBack) {
  auto out = engine_.Execute(
      "modify EMPLOYEE set NAME = Jones where EMPLOYEE.NAME = Smith "
      "as hr");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("key conflict"), std::string::npos);
  // Smith's row is intact.
  EXPECT_EQ(SalaryOf("Smith"), Value::Int64(22000));
}

TEST(UpdateGuardParsing, ModesRoundTrip) {
  auto permit = ParseStatement("permit V to U for insert");
  ASSERT_TRUE(permit.ok());
  EXPECT_EQ(std::get<PermitStmt>(*permit).mode, GrantMode::kInsert);
  EXPECT_EQ(std::get<PermitStmt>(*permit).ToString(),
            "permit V to U for insert");
  auto deny = ParseStatement("deny V to U for delete");
  ASSERT_TRUE(deny.ok());
  EXPECT_EQ(std::get<DenyStmt>(*deny).mode, GrantMode::kDelete);
  auto del = ParseStatement("delete from R where R.A = 1 as U");
  ASSERT_TRUE(del.ok());
  const auto& stmt = std::get<DeleteStmt>(*del);
  EXPECT_EQ(stmt.relation, "R");
  EXPECT_EQ(stmt.as_user, "U");
  EXPECT_EQ(stmt.ToString(), "delete from R where R.A = 1 as U");
  EXPECT_FALSE(ParseStatement("permit V to U for frobnicate").ok());
  EXPECT_FALSE(ParseStatement("delete R").ok());

  auto modify = ParseStatement(
      "modify R set A = 5, B = x where R.C > 1 as U");
  ASSERT_TRUE(modify.ok()) << modify.status();
  const auto& m = std::get<ModifyStmt>(*modify);
  EXPECT_EQ(m.assignments.size(), 2u);
  EXPECT_EQ(m.assignments[0].value, Value::Int64(5));
  EXPECT_EQ(m.ToString(), "modify R set A = 5, B = x where R.C > 1 as U");
  EXPECT_FALSE(ParseStatement("modify R where R.A = 1").ok());
  EXPECT_FALSE(ParseStatement("modify R set A > 5").ok());
}

}  // namespace
}  // namespace viewauth
