// Tests for the durable (statement-logged) engine.

#include "engine/durable.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace viewauth {
namespace {

class DurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "viewauth_durable_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DurableTest, StateSurvivesReopen) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (const char* stmt :
         {"relation T (A string key, B int)",
          "insert into T values (x, 1)", "insert into T values (y, 2)",
          "view VA (T.A, T.B) where T.B >= 2", "permit VA to u"}) {
      auto out = (*durable)->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status();
    }
  }
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Engine& engine = (*reopened)->engine();
  EXPECT_EQ((*engine.db().GetRelation("T"))->size(), 2);
  EXPECT_TRUE(engine.catalog().IsPermitted("u", "VA"));
  auto result = engine.Execute("retrieve (T.A, T.B) as u");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->find("| y | 2 |"), std::string::npos);
}

TEST_F(DurableTest, RetrievesAreNotLogged) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  ASSERT_TRUE((*durable)->Execute("retrieve (T.A) as nobody").ok());
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("retrieve"), std::string::npos);
  EXPECT_NE(contents.find("insert into T"), std::string::npos);
}

TEST_F(DurableTest, FailedStatementsAreNotLogged) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  EXPECT_FALSE((*durable)->Execute("relation T (A int)").ok());  // dup
  EXPECT_FALSE((*durable)->Execute("insert into T values (x)").ok());
  // Reopen must replay cleanly (no duplicate DDL recorded).
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
}

TEST_F(DurableTest, GuardedUpdatesReplayDeterministically) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    for (const char* stmt :
         {"relation P (N string key, S string, B int)",
          "insert into P values (p1, Acme, 100)",
          "insert into P values (p2, Apex, 200)",
          "view ACME (P.N, P.S, P.B) where P.S = Acme",
          "permit ACME to e for delete",
          "delete from P where P.B < 500 as e"}) {
      auto out = (*durable)->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status();
    }
    // Only the Acme row was deletable.
    EXPECT_EQ(((*durable)->engine().db().GetRelation("P")).value()->size(),
              1);
  }
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(((*reopened)->engine().db().GetRelation("P")).value()->size(),
            1);
}

TEST_F(DurableTest, CompactionShrinksAndPreservesState) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*durable)
            ->Execute("insert into T values (" + std::to_string(i) + ")")
            .ok());
  }
  ASSERT_TRUE((*durable)->Execute("delete from T where T.A >= 5").ok());
  ASSERT_TRUE((*durable)->Compact().ok());

  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  // Deleted rows vanish from the compacted log.
  EXPECT_EQ(contents.find("values (7)"), std::string::npos);
  EXPECT_NE(contents.find("values (3)"), std::string::npos);
  EXPECT_EQ(contents.find("delete"), std::string::npos);

  // State is intact and further statements still log.
  EXPECT_EQ(((*durable)->engine().db().GetRelation("T")).value()->size(),
            5);
  ASSERT_TRUE((*durable)->Execute("insert into T values (99)").ok());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(((*reopened)->engine().db().GetRelation("T")).value()->size(),
            6);
}

TEST_F(DurableTest, CorruptLogFailsToOpen) {
  {
    std::ofstream out(path_);
    out << "this is not a statement\n";
  }
  auto durable = DurableEngine::Open(path_);
  EXPECT_TRUE(durable.status().IsInternal());
}

}  // namespace
}  // namespace viewauth
