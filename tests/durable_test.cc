// Tests for the durable (statement-logged) engine: framed-V3 logging
// with batch commit markers, group commit, legacy replay + upgrade,
// salvage recovery, crash-safe compaction and fail-stop degraded mode.

#include "engine/durable.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common/file.h"
#include "test_fs_util.h"

namespace viewauth {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

void AppendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

DurableOptions Salvage() {
  DurableOptions options;
  options.recovery = RecoveryMode::kSalvage;
  return options;
}

class DurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "viewauth_durable_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DurableTest, StateSurvivesReopen) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (const char* stmt :
         {"relation T (A string key, B int)",
          "insert into T values (x, 1)", "insert into T values (y, 2)",
          "view VA (T.A, T.B) where T.B >= 2", "permit VA to u"}) {
      auto out = (*durable)->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status();
    }
  }
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Engine& engine = (*reopened)->engine();
  EXPECT_EQ((*engine.db().GetRelation("T"))->size(), 2);
  EXPECT_TRUE(engine.catalog().IsPermitted("u", "VA"));
  auto result = engine.Execute("retrieve (T.A, T.B) as u");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->find("| y | 2 |"), std::string::npos);
}

TEST_F(DurableTest, RetrievesAreNotLogged) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  ASSERT_TRUE((*durable)->Execute("retrieve (T.A) as nobody").ok());
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("retrieve"), std::string::npos);
  EXPECT_NE(contents.find("insert into T"), std::string::npos);
}

TEST_F(DurableTest, FailedStatementsAreNotLogged) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  EXPECT_FALSE((*durable)->Execute("relation T (A int)").ok());  // dup
  EXPECT_FALSE((*durable)->Execute("insert into T values (x)").ok());
  // Reopen must replay cleanly (no duplicate DDL recorded).
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
}

TEST_F(DurableTest, GuardedUpdatesReplayDeterministically) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    for (const char* stmt :
         {"relation P (N string key, S string, B int)",
          "insert into P values (p1, Acme, 100)",
          "insert into P values (p2, Apex, 200)",
          "view ACME (P.N, P.S, P.B) where P.S = Acme",
          "permit ACME to e for delete",
          "delete from P where P.B < 500 as e"}) {
      auto out = (*durable)->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status();
    }
    // Only the Acme row was deletable.
    EXPECT_EQ(((*durable)->engine().db().GetRelation("P")).value()->size(),
              1);
  }
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(((*reopened)->engine().db().GetRelation("P")).value()->size(),
            1);
}

TEST_F(DurableTest, CompactionShrinksAndPreservesState) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*durable)
            ->Execute("insert into T values (" + std::to_string(i) + ")")
            .ok());
  }
  ASSERT_TRUE((*durable)->Execute("delete from T where T.A >= 5").ok());
  ASSERT_TRUE((*durable)->Compact().ok());

  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  // Deleted rows vanish from the compacted log.
  EXPECT_EQ(contents.find("values (7)"), std::string::npos);
  EXPECT_NE(contents.find("values (3)"), std::string::npos);
  EXPECT_EQ(contents.find("delete"), std::string::npos);

  // State is intact and further statements still log.
  EXPECT_EQ(((*durable)->engine().db().GetRelation("T")).value()->size(),
            5);
  ASSERT_TRUE((*durable)->Execute("insert into T values (99)").ok());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(((*reopened)->engine().db().GetRelation("T")).value()->size(),
            6);
}

TEST_F(DurableTest, CorruptLogFailsToOpen) {
  {
    std::ofstream out(path_);
    out << "this is not a statement\n";
  }
  auto durable = DurableEngine::Open(path_);
  EXPECT_TRUE(durable.status().IsInternal());
}

TEST_F(DurableTest, NewLogsAreFramedV3) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_EQ((*durable)->format(), LogFormat::kFramedV3);
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  }
  const std::string contents = ReadAll(path_);
  EXPECT_TRUE(contents.rfind("#viewauth-log v3\n", 0) == 0) << contents;
  EXPECT_NE(contents.find("@1 "), std::string::npos);
  EXPECT_NE(contents.find("@2 "), std::string::npos);
  // Every acknowledged record is covered by a batch commit marker.
  EXPECT_NE(contents.find("=1 1 "), std::string::npos) << contents;
  EXPECT_NE(contents.find("=2 2 "), std::string::npos) << contents;

  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const RecoveryReport& report = (*reopened)->recovery_report();
  EXPECT_EQ(report.format, LogFormat::kFramedV3);
  EXPECT_FALSE(report.salvaged);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.last_good_seq, 2u);
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 1);
}

TEST_F(DurableTest, UncommittedBatchTailIsInvisibleAfterSalvage) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok()) << durable.status();
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  }
  // Build a structurally valid framed record with a correct CRC but no
  // commit marker after it — a batch whose frames hit the disk but whose
  // marker didn't. Such a record must not replay.
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (2)").ok());
  }
  // Chop off the final commit marker line, leaving the framed record.
  std::string contents = ReadAll(path_);
  size_t marker = contents.rfind("=3 3 ");
  ASSERT_NE(marker, std::string::npos) << contents;
  WriteAll(path_, contents.substr(0, marker));

  auto strict = DurableEngine::Open(path_);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("salvage"), std::string::npos);

  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  const RecoveryReport& report = (*salvaged)->recovery_report();
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.dropped_records, 1u);
  EXPECT_NE(report.detail.find("uncommitted batch tail"),
            std::string::npos);
  // Exactly the committed prefix: the unmarked insert is gone.
  EXPECT_EQ((*salvaged)->engine().db().GetRelation("T").value()->size(), 1);
  // The salvage physically truncated to the last committed boundary.
  auto strict_again = DurableEngine::Open(path_);
  ASSERT_TRUE(strict_again.ok()) << strict_again.status();
}

TEST_F(DurableTest, TornHeaderTailSalvages) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  }
  AppendRaw(path_, "@3 27");  // a record header torn mid-way, no newline

  auto strict = DurableEngine::Open(path_);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsInternal());
  EXPECT_NE(strict.status().message().find("salvage"), std::string::npos);

  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  const RecoveryReport& report = (*salvaged)->recovery_report();
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.dropped_records, 1u);
  EXPECT_EQ(report.dropped_bytes, 5u);
  EXPECT_NE(report.detail.find("truncated record header"),
            std::string::npos);
  EXPECT_EQ((*salvaged)->engine().db().GetRelation("T").value()->size(), 1);

  // Salvage physically truncated the tail: a strict reopen now works,
  // and appends continue from the salvaged sequence number.
  ASSERT_TRUE((*salvaged)->Execute("insert into T values (2)").ok());
  EXPECT_NE(ReadAll(path_).find("@3 "), std::string::npos);
  auto strict_again = DurableEngine::Open(path_);
  ASSERT_TRUE(strict_again.ok()) << strict_again.status();
  EXPECT_EQ((*strict_again)->engine().db().GetRelation("T").value()->size(),
            2);
}

TEST_F(DurableTest, TornPayloadTailSalvages) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  }
  // A full header whose payload (and terminator) never made it to disk.
  AppendRaw(path_, "@2 26 00000000\ninsert into T val");

  EXPECT_FALSE(DurableEngine::Open(path_).ok());
  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  EXPECT_TRUE((*salvaged)->recovery_report().salvaged);
  EXPECT_EQ((*salvaged)->recovery_report().records_replayed, 1u);
  EXPECT_NE((*salvaged)->recovery_report().detail.find("truncated payload"),
            std::string::npos);
}

TEST_F(DurableTest, MidLogCorruptionIsFatalInBothModes) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (2)").ok());
  }
  // Flip one byte inside the FIRST record's payload; later records stay
  // valid, so this is interior corruption, not a torn tail.
  std::string contents = ReadAll(path_);
  size_t header_end = contents.find('\n', contents.find("@1 "));
  ASSERT_NE(header_end, std::string::npos);
  contents[header_end + 1] ^= 0x01;
  WriteAll(path_, contents);

  auto strict = DurableEngine::Open(path_);
  ASSERT_FALSE(strict.ok());
  auto salvage = DurableEngine::Open(path_, Salvage());
  ASSERT_FALSE(salvage.ok());
  EXPECT_NE(salvage.status().message().find("interior corruption"),
            std::string::npos);
}

TEST_F(DurableTest, FailedSalvageReplayLeavesTheLogUntouched) {
  {
    auto durable = DurableEngine::Open(path_);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
    ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  }
  // Drop the first record (the DDL): the remaining framed record is
  // structurally valid but no longer replays. Add a torn tail that a
  // successful salvage would truncate away.
  std::string contents = ReadAll(path_);
  const std::string magic = contents.substr(0, contents.find('\n') + 1);
  size_t second = contents.find("@2 ");
  ASSERT_NE(second, std::string::npos);
  WriteAll(path_, magic + contents.substr(second) + "@3 12");
  const std::string before = ReadAll(path_);

  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_FALSE(salvaged.ok());
  EXPECT_NE(salvaged.status().message().find("does not replay cleanly"),
            std::string::npos);
  // The failed open had no side effects: the torn tail is still there.
  EXPECT_EQ(ReadAll(path_), before);
}

TEST_F(DurableTest, FailedLegacySalvageReplayLeavesTheLogUntouched) {
  // The first line parses but cannot replay (no relation T); the torn
  // final line makes this a salvage candidate.
  WriteAll(path_, "insert into T values (1)\nrelation T (A");
  const std::string before = ReadAll(path_);
  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_FALSE(salvaged.ok());
  EXPECT_EQ(ReadAll(path_), before);
}

TEST_F(DurableTest, FreshLogCreationSyncsTheDirectory) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  // One fsync for the magic line, one for the directory entry of the
  // freshly created log file.
  EXPECT_EQ(fs.sync_count(), 2u);
}

TEST_F(DurableTest, LegacyLogReplaysAndAppendsStayLegacy) {
  WriteAll(path_,
           "relation T (A string key, B int)\n"
           "insert into T values (x, 1)\n"
           "view VA (T.A, T.B) where T.B >= 1\n"
           "permit VA to u\n");
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->format(), LogFormat::kLegacyText);
  EXPECT_EQ((*durable)->recovery_report().records_replayed, 4u);
  EXPECT_TRUE((*durable)->engine().catalog().IsPermitted("u", "VA"));

  // Appends keep the legacy shape so the file stays consistently
  // parseable without a compaction.
  ASSERT_TRUE((*durable)->Execute("insert into T values (y, 2)").ok());
  const std::string contents = ReadAll(path_);
  EXPECT_EQ(contents.find('@'), std::string::npos);
  EXPECT_NE(contents.find("insert into T values (y, 2)"),
            std::string::npos);
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 2);
}

TEST_F(DurableTest, LegacyLogUpgradesToFramedOnCompact) {
  WriteAll(path_,
           "relation T (A int)\n"
           "insert into T values (1)\n"
           "insert into T values (2)\n");
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Compact().ok());
  EXPECT_EQ((*durable)->format(), LogFormat::kFramedV3);
  EXPECT_TRUE(ReadAll(path_).rfind("#viewauth-log v3\n", 0) == 0);

  // Post-upgrade appends are framed and the log replays as V3.
  ASSERT_TRUE((*durable)->Execute("insert into T values (3)").ok());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery_report().format, LogFormat::kFramedV3);
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 3);
}

TEST_F(DurableTest, LegacyTornFinalLineSalvages) {
  WriteAll(path_,
           "relation T (A int)\n"
           "insert into T values (1)\n"
           "insert into T val");  // torn mid-statement, no newline
  auto strict = DurableEngine::Open(path_);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("salvage"), std::string::npos);

  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  const RecoveryReport& report = (*salvaged)->recovery_report();
  EXPECT_EQ(report.format, LogFormat::kLegacyText);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.dropped_records, 1u);
  EXPECT_EQ(report.dropped_bytes, 17u);
  EXPECT_EQ((*salvaged)->engine().db().GetRelation("T").value()->size(), 1);
}

TEST_F(DurableTest, LegacyMidLogGarbageIsFatalEvenInSalvage) {
  WriteAll(path_,
           "relation T (A int)\n"
           "utter garbage line\n"
           "insert into T values (1)\n");
  EXPECT_FALSE(DurableEngine::Open(path_).ok());
  auto salvage = DurableEngine::Open(path_, Salvage());
  ASSERT_FALSE(salvage.ok());
  EXPECT_NE(salvage.status().message().find("interior corruption"),
            std::string::npos);
}

TEST_F(DurableTest, CompactFailureLeavesLogAndAppendHandleUsable) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  const std::string before = ReadAll(path_);

  // Failure while fsyncing the staged dump: the original log must be
  // untouched and — the historical bug — the append handle still open.
  fs.FailNextSync();
  EXPECT_FALSE((*durable)->Compact().ok());
  EXPECT_FALSE((*durable)->degraded());
  EXPECT_EQ(ReadAll(path_), before);
  EXPECT_FALSE(fs.FileExists(path_ + ".tmp"));
  ASSERT_TRUE((*durable)->Execute("insert into T values (2)").ok());

  // Failure at the rename commit: same guarantees.
  fs.FailNextRename();
  EXPECT_FALSE((*durable)->Compact().ok());
  EXPECT_FALSE((*durable)->degraded());
  EXPECT_FALSE(fs.FileExists(path_ + ".tmp"));
  ASSERT_TRUE((*durable)->Execute("insert into T values (3)").ok());

  // And with no fault injected, compaction goes through.
  ASSERT_TRUE((*durable)->Compact().ok());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 3);
}

TEST_F(DurableTest, AppendFailureIsFailStopAndRollsBack) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());

  // The next record tears 5 bytes in: the mutation must not survive.
  fs.set_crash_after_bytes(static_cast<int64_t>(fs.bytes_written()) + 5);
  auto failed = (*durable)->Execute("insert into T values (2)");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable());
  EXPECT_TRUE((*durable)->degraded());
  EXPECT_FALSE((*durable)->degraded_reason().empty());

  // Fail stop: the uncommitted insert was rolled back in memory...
  EXPECT_EQ((*durable)->engine().db().GetRelation("T").value()->size(), 1);
  // ...retrieves still work against the durable state...
  EXPECT_TRUE((*durable)->Execute("retrieve (T.A) as nobody").ok());
  // ...and every further mutation reports Unavailable.
  auto next = (*durable)->Execute("insert into T values (3)");
  EXPECT_TRUE(next.status().IsUnavailable());
  EXPECT_TRUE((*durable)->Compact().IsUnavailable());

  // A restart on the real filesystem salvages the torn record and lands
  // exactly on the durable prefix.
  auto reopened = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 1);
}

TEST_F(DurableTest, StaleCompactionTempIsRemovedOnOpen) {
  WriteAll(path_ + ".tmp", "leftover staged compaction bytes");
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_FALSE(FileSystem::Default()->FileExists(path_ + ".tmp"));
}

TEST_F(DurableTest, TornMagicHeaderSalvagesToFreshLog) {
  WriteAll(path_, "#viewauth-log");  // crash while creating the log
  auto strict = DurableEngine::Open(path_);
  ASSERT_FALSE(strict.ok());
  auto salvaged = DurableEngine::Open(path_, Salvage());
  ASSERT_TRUE(salvaged.ok()) << salvaged.status();
  EXPECT_TRUE((*salvaged)->recovery_report().salvaged);
  EXPECT_EQ((*salvaged)->recovery_report().records_replayed, 0u);
  ASSERT_TRUE((*salvaged)->Execute("relation T (A int)").ok());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
}

TEST_F(DurableTest, StatsReflectDurabilityState) {
  auto durable = DurableEngine::Open(path_);
  ASSERT_TRUE(durable.ok());
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  ASSERT_TRUE((*durable)->Compact().ok());
  DurableStats stats = (*durable)->stats();
  EXPECT_EQ(stats.format, LogFormat::kFramedV3);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_GT(stats.log_bytes, 0u);
  EXPECT_EQ(stats.commit_batches, 2u);
  EXPECT_EQ(stats.batched_records, 2u);
  EXPECT_EQ(stats.fsyncs_saved, 0u);
  EXPECT_EQ(stats.batch_aborts, 0u);
  EXPECT_EQ(stats.snapshots_live, 1);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("framed-v3"), std::string::npos);
  EXPECT_NE(rendered.find("compactions"), std::string::npos);
  EXPECT_NE(rendered.find("commit batches"), std::string::npos);
  EXPECT_NE(rendered.find("snapshots live"), std::string::npos);
}

TEST_F(DurableTest, TransientFsyncFailureAbortsTheWholeBatch) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  // Retries disabled: this asserts the strict fail-stop behavior a
  // single fault triggers when self-healing is off.
  options.transient_retry_attempts = 0;
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());

  // One EIO on the next fsync — the device hiccups, the machine stays
  // up. The batch must abort whole: no waiter acknowledged, staged state
  // rolled back, engine fail-stop.
  fs.ScheduleSyncFailure(1);
  auto failed = (*durable)->Execute("insert into T values (2)");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable());
  EXPECT_NE(failed.status().message().find("commit batch aborted"),
            std::string::npos)
      << failed.status();
  EXPECT_TRUE((*durable)->degraded());
  EXPECT_FALSE(fs.crashed());
  EXPECT_EQ((*durable)->stats().batch_aborts, 1u);

  // The aborted insert is invisible to readers...
  EXPECT_EQ((*durable)->engine().db().GetRelation("T").value()->size(), 1);
  EXPECT_TRUE((*durable)->Execute("retrieve (T.A) as nobody").ok());
  // ...and further mutations report Unavailable.
  EXPECT_TRUE(
      (*durable)->Execute("insert into T values (3)").status()
          .IsUnavailable());

  // Degraded entry clipped the unfsynced batch back to the durable
  // prefix, so even a STRICT reopen lands exactly there.
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE((*reopened)->recovery_report().salvaged);
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 1);
}

TEST_F(DurableTest, TransientFsyncFailureSelfHealsWithRetries) {
  FaultInjectingFileSystem fs(FileSystem::Default());
  DurableOptions options;
  options.fs = &fs;
  options.transient_retry_backoff_us = 10;  // keep the test fast
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());
  ASSERT_TRUE((*durable)->Execute("insert into T values (1)").ok());

  // One EIO on the next fsync. With retries on (the default), the commit
  // clips the log back to the durable prefix, re-appends, re-syncs and
  // acknowledges — no degraded mode, no lost mutation.
  fs.ScheduleSyncFailure(1);
  auto healed = (*durable)->Execute("insert into T values (2)");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_FALSE((*durable)->degraded());
  EXPECT_FALSE(fs.crashed());
  DurableStats stats = (*durable)->stats();
  EXPECT_EQ(stats.batch_aborts, 0u);
  EXPECT_EQ(stats.transient_retries, 1u);
  EXPECT_EQ(stats.transient_recoveries, 1u);
  EXPECT_NE(stats.ToString().find("transient retries"), std::string::npos);

  // The acked mutation is durable: a STRICT reopen replays it.
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE((*reopened)->recovery_report().salvaged);
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 2);

  // A second healed commit through the batched path keeps counting.
  fs.ScheduleSyncFailure(1);
  ASSERT_TRUE((*durable)->Execute("insert into T values (3)").ok());
  EXPECT_EQ((*durable)->stats().transient_retries, 2u);
  EXPECT_EQ((*durable)->stats().transient_recoveries, 2u);
  EXPECT_FALSE((*durable)->degraded());
}

TEST_F(DurableTest, CompactionQuiescesGroupCommitQueue) {
  GateFileSystem gate(FileSystem::Default());
  DurableOptions options;
  options.fs = &gate;
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());

  // Park a commit batch at its fsync.
  gate.CloseGate();
  std::thread writer([&] {
    EXPECT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  });
  gate.AwaitWaiter();

  // Compact() must quiesce: it waits for the in-flight batch to resolve
  // before touching the log, and a mutation arriving mid-compaction
  // blocks at the entry gate instead of staging into a doomed queue.
  std::thread compactor([&] { EXPECT_TRUE((*durable)->Compact().ok()); });
  std::thread late_writer([&] {
    EXPECT_TRUE((*durable)->Execute("insert into T values (2)").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.OpenGate();
  writer.join();
  compactor.join();
  late_writer.join();

  EXPECT_EQ((*durable)->engine().db().GetRelation("T").value()->size(), 2);
  EXPECT_EQ((*durable)->stats().compactions, 1u);
  EXPECT_FALSE((*durable)->degraded());
  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 2);
}

TEST_F(DurableTest, MultiRecordBatchCommitsWithOneFsync) {
  GateFileSystem gate(FileSystem::Default());
  DurableOptions options;
  options.fs = &gate;
  options.group_commit_window_us = 500000;  // plenty for stragglers
  auto durable = DurableEngine::Open(path_, options);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE((*durable)->Execute("relation T (A int)").ok());

  // Leader parks at its batch fsync; three stragglers pile up at the
  // entry gate behind it.
  gate.CloseGate();
  std::thread leader([&] {
    EXPECT_TRUE((*durable)->Execute("insert into T values (1)").ok());
  });
  gate.AwaitWaiter();
  std::vector<std::thread> stragglers;
  for (int i = 2; i <= 4; ++i) {
    stragglers.emplace_back([&, i] {
      EXPECT_TRUE(
          (*durable)
              ->Execute("insert into T values (" + std::to_string(i) + ")")
              .ok());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  gate.OpenGate();
  leader.join();
  for (std::thread& t : stragglers) t.join();

  // relation = batch of 1, leader = batch of 1, stragglers = ONE batch
  // of 3 (one append, one fsync for all three).
  DurableStats stats = (*durable)->stats();
  EXPECT_EQ(stats.commit_batches, 3u);
  EXPECT_EQ(stats.batched_records, 5u);
  EXPECT_EQ(stats.fsyncs_saved, 2u);
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ((*durable)->engine().db().GetRelation("T").value()->size(), 4);

  auto reopened = DurableEngine::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->engine().db().GetRelation("T").value()->size(), 4);
}

}  // namespace
}  // namespace viewauth
