#!/usr/bin/env bash
# The single pre-merge gate. Runs, in order:
#
#   1. configure + build with warnings-as-errors (and the compile
#      database for clang-tidy)
#   2. the regular test suite (differential + torture + coherence +
#      network tiers excluded)
#   3. the differential-soundness tier (slow, randomized; includes the
#      write-mix mutation scenarios)
#   4. the crash-recovery torture tier (slow: a simulated crash at every
#      byte boundary of log appends and compaction staging)
#   5. the concurrent crash-torture tier: mutator + retriever threads
#      over the group-commit path, a crash at every byte boundary of the
#      mutation stream — recovery must land on exactly a prefix of the
#      acknowledged commit order
#   6. the cache-coherence torture tier: randomized lockstep
#      interleavings of mutations and retrieves, a cold no-cache oracle
#      differencing every step
#   6b. the network torture tier: the wire-protocol server under short
#      reads/writes, mid-frame disconnects, in-flight corruption,
#      stalled peers, a seeded protocol fuzzer, and a
#      kill-the-durable-backend-under-concurrent-load crash whose acked
#      responses must all survive recovery
#   7. a Release (-O2) build of bench_latemat and its --smoke gate: the
#      late-materialized data pipeline must not be slower than the
#      tuple-at-a-time optimizer on the reference join workload
#   7b. a Release build of bench_vectorized and its --smoke gate: the
#      vectorized columnar plan must be >= 2x faster than the
#      late-materialized plan on a selective 128K-row scan (also fails
#      if the committed BENCH_vectorized.json is missing)
#   8. a Release build of bench_governor and its --smoke gate: governing
#      a non-tripping retrieve (generous deadline + budgets) must cost
#      no more than 2% over the ungoverned pipeline
#   9. a Release build of bench_invalidation and its --smoke gate: with
#      dependency-tracked invalidation the cache must stay >= 2x faster
#      than uncached at a 10% write mix (also fails if the committed
#      BENCH_invalidation.json is missing)
#  10. a Release build of bench_groupcommit and its --smoke gate: at 16
#      concurrent writers group commit must be >= 2x faster than
#      per-mutation fsync (also fails if the committed
#      BENCH_groupcommit.json is missing)
#  10b. a Release build of bench_server and its --smoke gate: 200
#      concurrent wire connections against a small admission envelope —
#      every request must eventually succeed through the retry client,
#      with zero protocol errors and throughput above the floor (also
#      fails if the committed BENCH_server.json is missing)
#  11. the disclosure-audit gate: viewauth_lint --audit over the seeded
#      audit fixtures (clean catalog silent, seeded channel/bypass
#      catalogs exit 1) plus a generated 100-view catalog that must
#      finish under the auditor's enumeration cutoffs within 60s
#  12. clang-tidy via tools/lint.sh (SKIPPED when not installed)
#  13. the full suite under ThreadSanitizer
#  14. the full suite under AddressSanitizer + UndefinedBehaviorSanitizer
#      (both sanitizer tiers include the torture + coherence tests and
#      the group-commit path, which is on by default)
#
# Prints a summary table and exits nonzero if any step failed.
#
# Usage: tools/check.sh [extra ctest args...]
#   VIEWAUTH_CHECK_SKIP_SANITIZERS=1 skips the sanitizer tiers (quick
#   local runs).

set -uo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

STEP_NAMES=()
STEP_RESULTS=()
FAILED=0

run_step() {
  local name="$1"
  shift
  echo
  echo "== ${name} =="
  local status=0
  "$@" || status=$?
  STEP_NAMES+=("$name")
  if [ "$status" -eq 0 ]; then
    STEP_RESULTS+=("PASS")
  else
    STEP_RESULTS+=("FAIL")
    FAILED=1
  fi
  return 0
}

configure_and_build() {
  cmake -B build -S . -DVIEWAUTH_WERROR=ON >/dev/null &&
    cmake --build build -j "$JOBS"
}

run_step "build (Werror)" configure_and_build

if [ "${STEP_RESULTS[0]}" = "PASS" ]; then
  run_step "unit tests" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -E 'Differential|CrashTorture|CacheCoherence|NetworkTorture' "$@"
  run_step "differential soundness" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R Differential "$@"
  run_step "crash-recovery torture" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R CrashTorture -E ConcurrentCrashTorture "$@"
  run_step "concurrent crash torture" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R ConcurrentCrashTorture "$@"
  run_step "cache-coherence torture" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R CacheCoherence "$@"
  run_step "network torture" \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R NetworkTorture "$@"
  latemat_smoke() {
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_latemat &&
      ./build-release/bench/bench_latemat --smoke
  }
  run_step "latemat perf smoke (Release)" latemat_smoke
  vectorized_smoke() {
    if [ ! -f BENCH_vectorized.json ]; then
      echo "BENCH_vectorized.json missing: run" \
        "./build-release/bench/bench_vectorized from the repo root"
      return 1
    fi
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_vectorized &&
      ./build-release/bench/bench_vectorized --smoke
  }
  run_step "vectorized perf smoke (Release)" vectorized_smoke
  governor_smoke() {
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_governor &&
      ./build-release/bench/bench_governor --smoke
  }
  run_step "governor overhead smoke (Release)" governor_smoke
  invalidation_smoke() {
    if [ ! -f BENCH_invalidation.json ]; then
      echo "BENCH_invalidation.json missing: run" \
        "./build-release/bench/bench_invalidation from the repo root"
      return 1
    fi
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_invalidation &&
      ./build-release/bench/bench_invalidation --smoke
  }
  run_step "invalidation perf smoke (Release)" invalidation_smoke
  groupcommit_smoke() {
    if [ ! -f BENCH_groupcommit.json ]; then
      echo "BENCH_groupcommit.json missing: run" \
        "./build-release/bench/bench_groupcommit from the repo root"
      return 1
    fi
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_groupcommit &&
      ./build-release/bench/bench_groupcommit --smoke
  }
  run_step "group-commit perf smoke (Release)" groupcommit_smoke
  server_smoke() {
    if [ ! -f BENCH_server.json ]; then
      echo "BENCH_server.json missing: run" \
        "./build-release/bench/bench_server from the repo root"
      return 1
    fi
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
      cmake --build build-release -j "$JOBS" --target bench_server &&
      ./build-release/bench/bench_server --smoke
  }
  run_step "server load smoke (Release)" server_smoke
  disclosure_audit() {
    local lint=./build/tools/viewauth_lint
    local status
    # Seeded fixtures: the clean catalog must audit silent, the seeded
    # channel/bypass catalogs must fail with exit 1 exactly (2 = load
    # failure, which would mean the fixture rotted).
    "$lint" --audit --quiet tests/data/audit_clean_catalog.script ||
      { echo "audit: clean catalog reported findings"; return 1; }
    "$lint" --audit --quiet tests/data/audit_channel_catalog.script
    status=$?
    [ "$status" -eq 1 ] ||
      { echo "audit: channel catalog exit $status, want 1"; return 1; }
    "$lint" --audit --quiet tests/data/audit_deny_bypass_catalog.script
    status=$?
    [ "$status" -eq 1 ] ||
      { echo "audit: deny-bypass catalog exit $status, want 1"; return 1; }
    # Scale guard: a 100-view catalog (every view shares the key, so the
    # composition lattice is huge) must finish under the enumeration
    # cutoffs, not time out. The generated catalog is all channels, so
    # exit 1 is the expected verdict.
    local big
    big="$(mktemp)"
    {
      printf 'relation WIDE (K int key'
      for i in $(seq 1 100); do printf ', C%d int' "$i"; done
      printf ')\n'
      for i in $(seq 1 100); do
        printf 'view V%d (WIDE.K, WIDE.C%d)\n' "$i" "$i"
        printf 'permit V%d to Scale\n' "$i"
      done
    } > "$big"
    timeout 60 "$lint" --audit --quiet "$big"
    status=$?
    rm -f "$big"
    [ "$status" -eq 1 ] ||
      { echo "audit: 100-view catalog exit $status, want 1"; return 1; }
    echo "audit: fixtures and 100-view scale guard OK"
  }
  run_step "disclosure audit" disclosure_audit
  run_step "clang-tidy" tools/lint.sh build
else
  echo "build failed; skipping test and lint steps"
fi

if [ "${VIEWAUTH_CHECK_SKIP_SANITIZERS:-0}" != "1" ]; then
  tsan_tier() {
    cmake -B build-tsan -S . -DVIEWAUTH_WERROR=ON \
      -DVIEWAUTH_SANITIZE=thread >/dev/null &&
      cmake --build build-tsan -j "$JOBS" &&
      TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
        ctest --test-dir build-tsan --output-on-failure -j "$JOBS" "$@"
  }
  asan_tier() {
    cmake -B build-asan -S . -DVIEWAUTH_WERROR=ON \
      -DVIEWAUTH_SANITIZE=address,undefined >/dev/null &&
      cmake --build build-asan -j "$JOBS" &&
      ASAN_OPTIONS="halt_on_error=1:detect_leaks=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
        UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
        ctest --test-dir build-asan --output-on-failure -j "$JOBS" "$@"
  }
  run_step "thread sanitizer" tsan_tier "$@"
  run_step "address+ub sanitizer" asan_tier "$@"
else
  echo
  echo "(sanitizer tiers skipped: VIEWAUTH_CHECK_SKIP_SANITIZERS=1)"
fi

echo
echo "== summary =="
for i in "${!STEP_NAMES[@]}"; do
  printf '  %-24s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
done

if [ "$FAILED" -ne 0 ]; then
  echo "some checks FAILED"
  exit 1
fi
echo "all checks passed"
