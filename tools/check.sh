#!/usr/bin/env bash
# Full pre-merge check: the regular build + tests, then the whole suite
# again under ThreadSanitizer to catch data races in the concurrent
# retrieve/mutation paths (engine locking, authorization cache, thread
# pool).
#
# Usage: tools/check.sh [extra ctest args...]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: regular build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS" "$@"

echo
echo "== tier 2: ThreadSanitizer build + ctest =="
cmake -B build-tsan -S . -DVIEWAUTH_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" "$@"

echo
echo "all checks passed"
