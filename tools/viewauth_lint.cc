// viewauth_lint: static analyzer over authorization catalogs.
//
// Loads one or more catalogs — durable statement logs or DumpScript
// output, i.e. plain-text surface-language scripts — replays each into a
// fresh engine (data statements included, so schema drops replay
// faithfully), runs the catalog analyzer, and prints its report.
//
// Usage:
//   viewauth_lint [--strict] [--no-coverage] [--quiet] CATALOG...
//   viewauth_lint < catalog.script
//
//   --strict       exit nonzero on warnings too, not just errors
//   --no-coverage  omit the projection-coverage table
//   --quiet        print only the per-catalog summary line
//
// Exit status: 0 when every catalog is clean (of errors; of warnings too
// under --strict), 1 when some finding crosses the threshold, 2 when a
// catalog fails to load.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/catalog_analyzer.h"
#include "engine/engine.h"

namespace {

using viewauth::AnalysisOptions;
using viewauth::AnalysisReport;
using viewauth::Engine;

int RunOne(const std::string& label, const std::string& script,
           const AnalysisOptions& options, bool strict, bool quiet,
           bool show_coverage) {
  Engine engine;
  auto loaded = engine.ExecuteScript(script);
  if (!loaded.ok()) {
    std::cerr << label << ": failed to load catalog: " << loaded.status()
              << "\n";
    return 2;
  }
  AnalysisReport report = engine.AnalyzeCatalog(options);
  if (quiet) {
    std::cout << label << ": " << report.SummaryLine() << "\n";
  } else {
    std::cout << label << ":\n" << report.ToString(show_coverage) << "\n";
  }
  const bool failed =
      report.HasErrors() || (strict && report.warnings() > 0);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool quiet = false;
  bool show_coverage = true;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--no-coverage") {
      show_coverage = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: viewauth_lint [--strict] [--no-coverage] "
                   "[--quiet] CATALOG...\n"
                   "reads stdin when no catalog path is given\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  AnalysisOptions options;
  options.include_coverage = show_coverage;

  int exit_code = 0;
  auto fold = [&exit_code](int code) {
    // Load failures dominate; otherwise any finding beats clean.
    exit_code = std::max(exit_code, code);
  };

  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    fold(RunOne("<stdin>", buffer.str(), options, strict, quiet,
                show_coverage));
    return exit_code;
  }
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      fold(2);
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fold(RunOne(path, buffer.str(), options, strict, quiet, show_coverage));
  }
  return exit_code;
}
