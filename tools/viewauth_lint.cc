// viewauth_lint: static analyzer over authorization catalogs.
//
// Loads one or more catalogs — durable statement logs or DumpScript
// output, i.e. plain-text surface-language scripts — replays each into a
// fresh engine (data statements included, so schema drops replay
// faithfully), runs the catalog analyzer — and, under --audit, the
// disclosure auditor — and prints the report.
//
// Usage:
//   viewauth_lint [FLAGS] CATALOG...
//   viewauth_lint [FLAGS] < catalog.script
//
//   --strict         exit nonzero on warnings too, not just errors
//   --no-coverage    omit the projection-coverage table
//   --quiet          print only the per-catalog summary line
//   --audit          also run the disclosure auditor: per-user closure,
//                    inference-channel and deny-bypass findings
//   --drift-since N  with --audit: journal-differential drift report of
//                    every retrieve permit recorded after catalog
//                    version N (implies --audit)
//   --json           machine-readable output: one JSON report per
//                    catalog, diagnostics in stable deterministic order
//                    (check kind, then view, then user)
//
// Exit status: 0 when every catalog is clean or carries only notes
// (info-level findings never fail the lint), 1 when some catalog has an
// error finding (a warning too under --strict), 2 when a catalog fails
// to load. The 0-vs-1 split is what lets a CI step distinguish
// "informational drift" from "real inference channel".

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/catalog_analyzer.h"
#include "engine/engine.h"

namespace {

using viewauth::AnalysisOptions;
using viewauth::AnalysisReport;
using viewauth::DisclosureAuditOptions;
using viewauth::Engine;

struct LintOptions {
  bool strict = false;
  bool quiet = false;
  bool show_coverage = true;
  bool audit = false;
  bool json = false;
  long long drift_since = -1;
};

int RunOne(const std::string& label, const std::string& script,
           const LintOptions& lint) {
  Engine engine;
  auto loaded = engine.ExecuteScript(script);
  if (!loaded.ok()) {
    std::cerr << label << ": failed to load catalog: " << loaded.status()
              << "\n";
    return 2;
  }
  AnalysisOptions options;
  options.include_coverage = lint.show_coverage;
  AnalysisReport report = engine.AnalyzeCatalog(options);
  if (lint.audit) {
    DisclosureAuditOptions audit_options;
    audit_options.drift_since_seq = lint.drift_since;
    report.Merge(engine.AuditCatalog(audit_options));
  }
  if (lint.json) {
    std::cout << report.ToJson() << "\n";
  } else if (lint.quiet) {
    std::cout << label << ": " << report.SummaryLine() << "\n";
  } else {
    std::cout << label << ":\n" << report.ToString(lint.show_coverage)
              << "\n";
  }
  const bool failed =
      report.HasErrors() || (lint.strict && report.warnings() > 0);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions lint;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      lint.strict = true;
    } else if (arg == "--quiet") {
      lint.quiet = true;
    } else if (arg == "--no-coverage") {
      lint.show_coverage = false;
    } else if (arg == "--audit") {
      lint.audit = true;
    } else if (arg == "--json") {
      lint.json = true;
    } else if (arg == "--drift-since") {
      if (i + 1 >= argc) {
        std::cerr << "--drift-since needs a catalog version\n";
        return 2;
      }
      lint.drift_since = std::atoll(argv[++i]);
      lint.audit = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: viewauth_lint [--strict] [--no-coverage] "
                   "[--quiet] [--audit] [--drift-since N] [--json] "
                   "CATALOG...\n"
                   "reads stdin when no catalog path is given\n"
                   "exit: 0 clean or notes only, 1 error findings "
                   "(warnings too under --strict), 2 load failure\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  int exit_code = 0;
  auto fold = [&exit_code](int code) {
    // Load failures dominate; otherwise any finding beats clean.
    exit_code = std::max(exit_code, code);
  };

  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    fold(RunOne("<stdin>", buffer.str(), lint));
    return exit_code;
  }
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      fold(2);
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fold(RunOne(path, buffer.str(), lint));
  }
  return exit_code;
}
