// viewauth_server: the wire-protocol front end as a standalone tool.
//
//   viewauth_server --log db.log [--port N | --unix PATH] [options]
//
// Serves the viewauth wire protocol (src/server/frame.h) over TCP or a
// unix-domain socket, backed by a DurableEngine on --log (or an
// in-memory Engine without one). SIGINT/SIGTERM trigger a graceful
// drain: the listener closes, in-flight requests finish, queued and
// late requests get a structured shutting-down error, and the combined
// stats report is printed on exit.
//
// Options:
//   --log PATH        statement log (durable engine); omit for in-memory
//   --salvage         open the log in salvage mode (truncate a torn tail)
//   --port N          TCP port to listen on (0 = ephemeral; prints it)
//   --unix PATH       unix-domain socket path (overrides --port)
//   --seed PATH       execute a statement script before serving
//   --max-conn N      connection cap             (default 256)
//   --idle-ms N       idle eviction timeout      (default 60000)
//   --io-ms N         read/write stall timeout   (default 10000)
//   --drain-ms N      graceful drain window      (default 10000)
//   --deadline-ms N   default per-request deadline (default none)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "server/server.h"

namespace {

// Written by the signal handler, polled by the main loop.
volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

long long ParseLong(const char* text, const char* flag) {
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "viewauth_server: %s expects an integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace viewauth;

  std::string log_path;
  std::string unix_path;
  std::string seed_path;
  bool salvage = false;
  int port = 0;
  ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "viewauth_server: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--log") {
      log_path = need_value("--log");
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--port") {
      port = static_cast<int>(ParseLong(need_value("--port"), "--port"));
    } else if (arg == "--unix") {
      unix_path = need_value("--unix");
    } else if (arg == "--seed") {
      seed_path = need_value("--seed");
    } else if (arg == "--max-conn") {
      options.max_connections =
          static_cast<int>(ParseLong(need_value("--max-conn"), "--max-conn"));
    } else if (arg == "--idle-ms") {
      options.idle_timeout_ms = ParseLong(need_value("--idle-ms"), "--idle-ms");
    } else if (arg == "--io-ms") {
      options.io_timeout_ms = ParseLong(need_value("--io-ms"), "--io-ms");
    } else if (arg == "--drain-ms") {
      options.drain_timeout_ms =
          ParseLong(need_value("--drain-ms"), "--drain-ms");
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms =
          ParseLong(need_value("--deadline-ms"), "--deadline-ms");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: viewauth_server [--log PATH] [--port N | --unix PATH]\n"
          "                       [--salvage] [--seed PATH] [--max-conn N]\n"
          "                       [--idle-ms N] [--io-ms N] [--drain-ms N]\n"
          "                       [--deadline-ms N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "viewauth_server: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<DurableEngine> durable;
  std::unique_ptr<Engine> memory;
  if (!log_path.empty()) {
    DurableOptions durable_options;
    durable_options.recovery =
        salvage ? RecoveryMode::kSalvage : RecoveryMode::kStrict;
    auto opened = DurableEngine::Open(log_path, durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "viewauth_server: cannot open log: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(*opened);
    std::printf("log %s: %s\n", log_path.c_str(),
                durable->recovery_report().ToString().c_str());
  } else {
    memory = std::make_unique<Engine>();
  }

  if (!seed_path.empty()) {
    std::ifstream in(seed_path);
    if (!in) {
      std::fprintf(stderr, "viewauth_server: cannot read seed '%s'\n",
                   seed_path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    auto seeded = durable != nullptr ? durable->ExecuteScript(script.str())
                                     : memory->ExecuteScript(script.str());
    if (!seeded.ok()) {
      std::fprintf(stderr, "viewauth_server: seed failed: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }
  }

  auto server = durable != nullptr
                    ? std::make_unique<Server>(durable.get(), options)
                    : std::make_unique<Server>(memory.get(), options);

  Result<std::unique_ptr<ListenSocket>> listener =
      unix_path.empty() ? ListenSocket::ListenTcp("127.0.0.1", port)
                        : ListenSocket::ListenUnix(unix_path);
  if (!listener.ok()) {
    std::fprintf(stderr, "viewauth_server: cannot listen: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  Status started = server->Start(std::move(*listener));
  if (!started.ok()) {
    std::fprintf(stderr, "viewauth_server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (unix_path.empty()) {
    std::printf("listening on 127.0.0.1:%d\n", server->port());
  } else {
    std::printf("listening on %s\n", unix_path.c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    struct timespec ts {0, 100'000'000};  // 100ms
    nanosleep(&ts, nullptr);
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server->Stop();
  std::printf("%s", server->StatsReport().c_str());
  return 0;
}
