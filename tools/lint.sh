#!/usr/bin/env bash
# clang-tidy over the project sources, driven by the CMake compile
# database. Usage:
#
#   tools/lint.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must have been configured (the root
# CMakeLists exports compile_commands.json unconditionally). Exits 0 with
# a SKIPPED notice when clang-tidy is not installed, so the check.sh gate
# stays runnable on minimal toolchains; exits nonzero on any finding
# (.clang-tidy sets WarningsAsErrors: '*').
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "lint: SKIPPED (clang-tidy not installed)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint: no compile database at $BUILD_DIR/compile_commands.json" >&2
  echo "lint: configure first: cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

# Project sources only: src/ and tools/ (tests and benches are out of
# lint scope — see .clang-tidy). src/analysis carries its own stricter
# .clang-tidy (full bugprone-*/performance-* groups, no exclusions);
# clang-tidy picks the nearest config per file, so no flags are needed
# here.
mapfile -t FILES < <(find "$ROOT/src" "$ROOT/tools" \
    -name '*.cc' -o -name '*.cpp' | sort)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "lint: no sources found" >&2
  exit 2
fi

echo "lint: clang-tidy over ${#FILES[@]} files"
STATUS=0
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}" || STATUS=$?
if [ "$STATUS" -eq 0 ]; then
  echo "lint: clean"
else
  echo "lint: findings reported (exit $STATUS)" >&2
fi
exit "$STATUS"
