// Quickstart: the full viewauth workflow on the paper's corporate
// database — define relations, load data, define views, grant permits,
// and watch queries get masked.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "engine/engine.h"

int main() {
  viewauth::Engine engine;

  // 1. Schema and data (the paper's Figure 1 instance).
  auto setup = engine.ExecuteScript(R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    relation ASSIGNMENT (E_NAME string key, P_NO string key)

    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)
    insert into EMPLOYEE values (Brown, engineer, 32000)

    insert into PROJECT values (bq-45, Acme, 300000)
    insert into PROJECT values (sv-72, Apex, 450000)
    insert into PROJECT values (vg-13, Summit, 150000)

    insert into ASSIGNMENT values (Jones, bq-45)
    insert into ASSIGNMENT values (Smith, bq-45)
    insert into ASSIGNMENT values (Jones, sv-72)
    insert into ASSIGNMENT values (Brown, sv-72)
    insert into ASSIGNMENT values (Smith, vg-13)
    insert into ASSIGNMENT values (Brown, vg-13)
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  // 2. Access permissions are views (database knowledge, not windows).
  auto permissions = engine.ExecuteScript(R"(
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.SPONSOR = Acme
    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
      where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
      and PROJECT.NUMBER = ASSIGNMENT.P_NO
      and PROJECT.BUDGET >= 250000
    view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
      where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE

    permit SAE to Brown
    permit PSA to Brown
    permit EST to Brown
    permit ELP to Klein
    permit EST to Klein
  )");
  if (!permissions.ok()) {
    std::cerr << permissions.status() << "\n";
    return 1;
  }
  std::cout << *permissions << "\n";

  // 3. Users query the ACTUAL relations; the system infers what portion
  //    each user may see and masks the rest.
  const char* queries[] = {
      // Paper Example 1: Brown asks for all large projects, but is only
      // permitted Acme's.
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000 as Brown",
      // Paper Example 2: Klein asks for names AND salaries; only the
      // names are within ELP.
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
      "where EMPLOYEE.TITLE = engineer "
      "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
      "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
      "and PROJECT.BUDGET > 300000 as Klein",
      // Paper Example 3: Brown's SAE+EST self-join grants everything.
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, "
      "EMPLOYEE:2.SALARY) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE as Brown",
      // Klein has no view covering PROJECT alone: denied.
      "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
      "where PROJECT.BUDGET >= 250000 as Klein",
  };
  for (const char* text : queries) {
    std::cout << "> " << text << "\n";
    auto output = engine.Execute(text);
    if (!output.ok()) {
      std::cout << output.status() << "\n\n";
      continue;
    }
    std::cout << *output << "\n";
  }
  return 0;
}
