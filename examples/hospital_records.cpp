// Hospital records: a domain scenario exercising the Section 4.2
// selection refinement on range predicates.
//
// A research assistant is permitted to see diagnoses of elderly patients
// (AGE >= 65) in the cardiology ward. Queries with different age ranges
// show the four cases of the refinement: the permitted view's predicate
// is tightened, retained, cleared, or the request is denied.
//
// Build & run:   cmake --build build && ./build/examples/hospital_records

#include <iostream>

#include "engine/engine.h"

int main() {
  viewauth::Engine engine;

  auto setup = engine.ExecuteScript(R"(
    relation PATIENT (ID int key, NAME string, WARD string, AGE int)
    relation RECORD (PATIENT_ID int key, DIAGNOSIS string, COST int)

    insert into PATIENT values (1, Adams, cardiology, 71)
    insert into PATIENT values (2, Baker, cardiology, 58)
    insert into PATIENT values (3, Chen, cardiology, 83)
    insert into PATIENT values (4, Diaz, oncology, 77)
    insert into PATIENT values (5, Evans, cardiology, 66)

    insert into RECORD values (1, arrhythmia, 5200)
    insert into RECORD values (2, hypertension, 1100)
    insert into RECORD values (3, infarction, 20400)
    insert into RECORD values (4, lymphoma, 48100)
    insert into RECORD values (5, angina, 3600)

    view ELDERLY_CARDIO (PATIENT.ID, PATIENT.NAME, PATIENT.AGE,
                         RECORD.DIAGNOSIS)
      where PATIENT.ID = RECORD.PATIENT_ID
      and PATIENT.WARD = cardiology
      and PATIENT.AGE >= 65

    permit ELDERLY_CARDIO to assistant
  )");
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return 1;
  }

  // All queries state the ward: the permitted view restricts WARD, and a
  // mask may only be expressed with requested/queried attributes
  // (paper conclusion (3)), so a query silent about WARD cannot inherit
  // the view. Each query exercises one case of the Section 4.2 selection
  // refinement on the AGE predicate.
  const char* queries[] = {
      // Query range inside the permitted range (lambda implies mu): the
      // age restriction is cleared; the permit carries no residual bound.
      "retrieve (PATIENT.NAME, RECORD.DIAGNOSIS) "
      "where PATIENT.ID = RECORD.PATIENT_ID and PATIENT.WARD = cardiology "
      "and PATIENT.AGE >= 80 as assistant",
      // Permitted range inside the query range (mu implies lambda): the
      // view is retained unmodified; the permit says AGE >= 65.
      "retrieve (PATIENT.NAME, PATIENT.AGE, RECORD.DIAGNOSIS) "
      "where PATIENT.ID = RECORD.PATIENT_ID and PATIENT.WARD = cardiology "
      "and PATIENT.AGE >= 50 as assistant",
      // Overlapping ranges (conjoin): the mask tightens to [65, 70).
      "retrieve (PATIENT.NAME, PATIENT.AGE, RECORD.DIAGNOSIS) "
      "where PATIENT.ID = RECORD.PATIENT_ID and PATIENT.WARD = cardiology "
      "and PATIENT.AGE >= 50 and PATIENT.AGE < 70 as assistant",
      // Disjoint ranges (contradiction): nothing within the permission.
      "retrieve (PATIENT.NAME, RECORD.DIAGNOSIS) "
      "where PATIENT.ID = RECORD.PATIENT_ID and PATIENT.WARD = cardiology "
      "and PATIENT.AGE < 60 as assistant",
      // Asking for COST as well: the view does not cover it, so the cost
      // column comes back masked while the permitted columns flow.
      "retrieve (PATIENT.NAME, RECORD.DIAGNOSIS, RECORD.COST) "
      "where PATIENT.ID = RECORD.PATIENT_ID and PATIENT.WARD = cardiology "
      "and PATIENT.AGE >= 65 as assistant",
  };
  for (const char* text : queries) {
    std::cout << "> " << text << "\n";
    auto output = engine.Execute(text);
    if (!output.ok()) {
      std::cout << output.status() << "\n\n";
      continue;
    }
    std::cout << *output << "\n";
  }
  return 0;
}
