// Interactive REPL over the viewauth engine: type statements, see masked
// results. Starts with the paper's Figure 1 database loaded.
//
// Usage:   ./build/examples/repl [STATE.log]
//   With a log path the session is durable: mutations are framed,
//   checksummed and fsynced to STATE.log, and the log is opened in
//   salvage mode (a torn tail from a crash is truncated and reported,
//   not fatal). A fresh log is seeded with the paper's database.
//
//   > user Brown                        -- switch the session user
//   > retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)
//   > permit SAE to Klein               -- administration works too
//   > dump                              -- print the persistence script
//   > compact                           -- rewrite the log (durable only)
//   > stats                             -- cache + durability statistics
//   > options                           -- show refinement switches
//   > set extended_masks on
//   > quit

#include <iostream>
#include <memory>
#include <string>

#include "common/str_util.h"
#include "engine/durable.h"
#include "engine/engine.h"

using namespace viewauth;

namespace {

void PrintHelp() {
  std::cout << "commands:\n"
               "  <statement>            relation/insert/view/permit/deny/"
               "retrieve/\n"
               "                         delete/modify/drop/member/"
               "unmember\n"
               "  analyze                lint the catalog: dead permits, "
               "shadowed\n"
               "                         denies, schema drift, coverage "
               "gaps\n"
               "  user <name>            switch session user (now used for "
               "retrieves)\n"
               "  dump                   print a script reproducing the "
               "current state\n"
               "  audit                  show the last 20 audit entries\n"
               "  options                show authorization options\n"
               "  set <option> on|off    toggle four_case, padding, "
               "self_joins,\n"
               "                         subsumption, extended_masks, "
               "cache,\n"
               "                         parallel, latemat, vectorized, "
               "analyze (warn\n"
               "                         on permit/deny)\n"
               "  set <option> <n>       governance knobs (0 = unlimited):"
               "\n"
               "                         deadline_ms, max_rows, max_bytes,\n"
               "                         max_concurrent\n"
               "  stats (or \\stats)      show cache/pipeline/durability "
               "statistics\n"
               "  stats reset            zero the statistics counters\n"
               "  compact                rewrite the statement log "
               "(durable sessions)\n"
               "  help, quit\n";
}

void PrintOptions(const AuthorizationOptions& options) {
  auto onoff = [](bool b) { return b ? "on" : "off"; };
  std::cout << "four_case=" << onoff(options.four_case)
            << " padding=" << onoff(options.padding)
            << " self_joins=" << onoff(options.self_joins)
            << " subsumption=" << onoff(options.subsumption)
            << " extended_masks=" << onoff(options.extended_masks)
            << " cache=" << onoff(options.enable_authz_cache)
            << " parallel=" << onoff(options.parallel_meta_evaluation)
            << " latemat=" << onoff(options.use_latemat_data_plan)
            << " vectorized=" << onoff(options.use_vectorized_data_plan)
            << " analyze=" << onoff(options.analyze_grants)
            << " audit=" << onoff(options.audit_grants)
            << "\n"
            << "deadline_ms=" << options.deadline_ms
            << " max_rows=" << options.max_rows
            << " max_bytes=" << options.max_bytes
            << " max_concurrent=" << options.max_concurrent
            << " (0 = unlimited)\n";
}

constexpr const char* kPaperSetup = R"(
    relation EMPLOYEE (NAME string key, TITLE string, SALARY int)
    relation PROJECT (NUMBER string key, SPONSOR string, BUDGET int)
    relation ASSIGNMENT (E_NAME string key, P_NO string key)
    insert into EMPLOYEE values (Jones, manager, 26000)
    insert into EMPLOYEE values (Smith, technician, 22000)
    insert into EMPLOYEE values (Brown, engineer, 32000)
    insert into PROJECT values (bq-45, Acme, 300000)
    insert into PROJECT values (sv-72, Apex, 450000)
    insert into PROJECT values (vg-13, Summit, 150000)
    insert into ASSIGNMENT values (Jones, bq-45)
    insert into ASSIGNMENT values (Smith, bq-45)
    insert into ASSIGNMENT values (Jones, sv-72)
    insert into ASSIGNMENT values (Brown, sv-72)
    insert into ASSIGNMENT values (Smith, vg-13)
    insert into ASSIGNMENT values (Brown, vg-13)
    view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
      where PROJECT.SPONSOR = Acme
    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
      where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
      and PROJECT.NUMBER = ASSIGNMENT.P_NO
      and PROJECT.BUDGET >= 250000
    view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
      where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE
    permit SAE to Brown
    permit PSA to Brown
    permit EST to Brown
    permit ELP to Klein
    permit EST to Klein
  )";

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 || (argc == 2 && (std::string(argv[1]) == "--help" ||
                                 std::string(argv[1]) == "-h"))) {
    std::cout << "usage: repl [STATE.log]\n";
    return argc > 2 ? 1 : 0;
  }

  // With a log path the session is durable: every mutation is framed,
  // checksummed and fsynced before it is acknowledged. Salvage mode so a
  // torn tail from a crash truncates (with a report) rather than refusing
  // to start.
  std::unique_ptr<DurableEngine> durable;
  Engine fallback;
  if (argc == 2) {
    DurableOptions options;
    options.recovery = RecoveryMode::kSalvage;
    auto opened = DurableEngine::Open(argv[1], options);
    if (!opened.ok()) {
      std::cerr << "repl: " << opened.status() << "\n";
      return 1;
    }
    durable = std::move(*opened);
    const RecoveryReport& report = durable->recovery_report();
    if (report.salvaged) {
      std::cerr << "repl: salvaged '" << argv[1]
                << "': " << report.ToString() << "\n";
    }
    bool seeded = false;
    if (report.records_replayed == 0 &&
        durable->engine().db().schema().relation_names().empty()) {
      auto result = durable->ExecuteScript(kPaperSetup);
      if (!result.ok()) {
        std::cerr << "repl: seeding paper database: " << result.status()
                  << "\n";
        return 1;
      }
      seeded = true;
    }
    std::cout << "viewauth repl — durable log '" << argv[1] << "' ("
              << LogFormatToString(durable->format()) << ", "
              << report.records_replayed << " records replayed"
              << (seeded ? ", seeded with the paper's database" : "")
              << ").\nType 'help' for commands.\n";
  } else {
    auto setup = fallback.ExecuteScript(kPaperSetup);
    if (!setup.ok()) {
      std::cerr << setup.status() << "\n";
      return 1;
    }
    std::cout << "viewauth repl — the paper's database is loaded "
                 "(users: Brown, Klein).\nType 'help' for commands.\n";
  }
  // Re-fetch on every use: DurableEngine replaces its Engine during a
  // fail-stop rollback, so a cached reference would dangle exactly when
  // degraded mode is supposed to keep retrieves working.
  auto engine = [&]() -> Engine& {
    return durable ? durable->engine() : fallback;
  };
  engine().SetSessionUser("Brown");

  std::string line;
  std::cout << engine().session_user() << "> " << std::flush;
  while (std::getline(std::cin, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) {
      std::cout << engine().session_user() << "> " << std::flush;
      continue;
    }
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "help") {
      PrintHelp();
    } else if (trimmed == "options") {
      PrintOptions(engine().options());
    } else if (trimmed == "dump") {
      auto dump = engine().DumpScript();
      std::cout << (dump.ok() ? *dump : dump.status().ToString()) << "\n";
    } else if (trimmed == "audit") {
      std::cout << engine().audit_log().ToString(20);
    } else if (trimmed == "stats" || trimmed == "\\stats") {
      std::cout << engine().authz_stats().ToString();
      if (durable) std::cout << durable->stats().ToString();
    } else if (trimmed == "compact") {
      if (!durable) {
        std::cout << "compact: no durable log (start with: repl STATE.log)\n";
      } else {
        Status compacted = durable->Compact();
        if (compacted.ok()) {
          std::cout << "log compacted (" << durable->stats().log_bytes
                    << " bytes)\n";
        } else {
          std::cout << compacted << "\n";
        }
      }
    } else if (trimmed == "stats reset") {
      engine().ResetAuthzStats();
      std::cout << "statistics reset\n";
    } else if (StartsWith(trimmed, "explain ")) {
      auto trace = engine().ExplainRetrieve(std::string(trimmed.substr(8)));
      std::cout << (trace.ok() ? *trace : trace.status().ToString()) << "\n";
    } else if (StartsWith(trimmed, "user ")) {
      engine().SetSessionUser(
          std::string(StripWhitespace(trimmed.substr(5))));
    } else if (StartsWith(trimmed, "set ")) {
      std::vector<std::string> parts =
          Split(std::string(trimmed.substr(4)), ' ');
      if (parts.size() == 2) {
        bool on = parts[1] == "on";
        // Numeric governance knobs take a number instead of on|off.
        auto parse_number = [&](long long* target) {
          try {
            *target = std::stoll(parts[1]);
          } catch (...) {
            std::cout << "set " << parts[0]
                      << ": expected a number, got '" << parts[1] << "'\n";
          }
        };
        AuthorizationOptions& o = engine().options();
        if (parts[0] == "four_case") o.four_case = on;
        else if (parts[0] == "padding") o.padding = on;
        else if (parts[0] == "self_joins") o.self_joins = on;
        else if (parts[0] == "subsumption") o.subsumption = on;
        else if (parts[0] == "extended_masks") o.extended_masks = on;
        else if (parts[0] == "cache") o.enable_authz_cache = on;
        else if (parts[0] == "parallel") o.parallel_meta_evaluation = on;
        else if (parts[0] == "latemat") o.use_latemat_data_plan = on;
        else if (parts[0] == "vectorized") o.use_vectorized_data_plan = on;
        else if (parts[0] == "analyze") o.analyze_grants = on;
        else if (parts[0] == "audit") o.audit_grants = on;
        else if (parts[0] == "deadline_ms") parse_number(&o.deadline_ms);
        else if (parts[0] == "max_rows") parse_number(&o.max_rows);
        else if (parts[0] == "max_bytes") parse_number(&o.max_bytes);
        else if (parts[0] == "max_concurrent") {
          long long value = 0;
          parse_number(&value);
          o.max_concurrent = static_cast<int>(value);
        }
        else std::cout << "unknown option '" << parts[0] << "'\n";
        PrintOptions(o);
      } else {
        std::cout << "usage: set <option> on|off  (or: set <knob> <number>)\n";
      }
    } else {
      auto out = durable ? durable->Execute(line) : engine().Execute(line);
      if (out.ok()) {
        if (!out->empty()) std::cout << *out << "\n";
      } else {
        std::cout << out.status() << "\n";
      }
    }
    std::cout << engine().session_user() << "> " << std::flush;
  }
  return 0;
}
