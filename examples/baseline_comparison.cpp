// Baseline comparison: the introduction's two criticisms, demonstrated.
//
//  (1) System R treats a granted view as the only access window: a user
//      granted view V over A and B cannot query A directly, even for data
//      V exposes. Motro's model answers the same query with a mask.
//  (2) INGRES query modification handles rows and columns asymmetrically:
//      asking for one attribute too many rejects the whole query instead
//      of reducing it.
//
// Build & run:   cmake --build build && ./build/examples/baseline_comparison

#include <iostream>

#include "authz/authorizer.h"
#include "baselines/ingres/query_modification.h"
#include "baselines/systemr/grant_table.h"
#include "engine/table_printer.h"
#include "meta/view_store.h"
#include "parser/parser.h"

using namespace viewauth;

namespace {

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::exit(1);
  }
}

RetrieveStmt ParseRetrieve(const char* text) {
  Statement stmt = Unwrap(ParseStatement(text));
  return std::get<RetrieveStmt>(stmt);
}

}  // namespace

int main() {
  // A two-relation payroll database.
  DatabaseInstance db;
  Check(db.CreateRelation(Unwrap(RelationSchema::Make(
      "STAFF",
      {{"NAME", ValueType::kString},
       {"DEPT", ValueType::kString},
       {"SALARY", ValueType::kInt64}},
      {0}))));
  Check(db.CreateRelation(Unwrap(RelationSchema::Make(
      "DEPT",
      {{"DNAME", ValueType::kString}, {"FLOOR", ValueType::kInt64}},
      {0}))));
  for (auto [n, d, s] : {std::tuple{"Ann", "sales", 51000},
                         std::tuple{"Bob", "sales", 47000},
                         std::tuple{"Cal", "lab", 63000}}) {
    Check(db.Insert("STAFF", Tuple({Value::String(n), Value::String(d),
                                    Value::Int64(s)})));
  }
  for (auto [d, f] : {std::pair{"sales", 2}, {"lab", 5}}) {
    Check(db.Insert("DEPT", Tuple({Value::String(d), Value::Int64(f)})));
  }

  // The permission everyone intends: sales staff names and floors.
  const char* view_text =
      "view SALES_FLOOR (STAFF.NAME, STAFF.DEPT, DEPT.FLOOR) "
      "where STAFF.DEPT = DEPT.DNAME and STAFF.DEPT = sales";
  // The query a user actually writes: against the underlying relations,
  // not against the view object.
  const char* staff_query_text =
      "retrieve (STAFF.NAME, STAFF.DEPT, DEPT.FLOOR) "
      "where STAFF.DEPT = DEPT.DNAME";
  RetrieveStmt staff_query = ParseRetrieve(staff_query_text);

  std::cout << "Scenario: user 'clerk' is allowed the multi-relation view\n"
            << "  " << view_text << "\n"
            << "and asks the underlying relations directly:\n  "
            << staff_query_text << "\n\n";

  // --- System R ---------------------------------------------------------
  {
    systemr::SystemRAuthorizer sysr(&db.schema());
    Check(sysr.RegisterTable("STAFF", "dba"));
    Check(sysr.RegisterTable("DEPT", "dba"));
    Statement view_stmt = Unwrap(ParseStatement(view_text));
    ConjunctiveQuery view_def = Unwrap(ConjunctiveQuery::FromView(
        db.schema(), std::get<ViewStmt>(view_stmt)));
    Check(sysr.RegisterView("SALES_FLOOR", "dba", view_def));
    Check(sysr.Grant("dba", "clerk", "SALES_FLOOR",
                     systemr::Privilege::kRead, false));

    ConjunctiveQuery query = Unwrap(
        ConjunctiveQuery::FromRetrieve(db.schema(), staff_query));
    Status direct = sysr.CheckQuery("clerk", query);
    std::cout << "[System R] query on STAFF: " << direct << "\n";
    auto via_view = sysr.OpenView("clerk", "SALES_FLOOR");
    std::cout << "[System R] naming the view instead: "
              << (via_view.ok() ? "allowed (but only through V)"
                                : via_view.status().ToString())
              << "\n\n";
  }

  // --- INGRES -----------------------------------------------------------
  {
    ingres::IngresAuthorizer ing(&db.schema());
    // INGRES cannot express the multi-relation view at all; the closest
    // single-relation permission: sales rows of STAFF, NAME and DEPT.
    ingres::Permission p;
    p.user = "clerk";
    p.relation = "STAFF";
    p.columns = {"NAME", "DEPT"};
    Condition c;
    c.lhs = AttributeRef{"STAFF", 1, "DEPT"};
    c.op = Comparator::kEq;
    c.rhs = ConditionOperand::Const(Value::String("sales"));
    p.qualification.push_back(c);
    Check(ing.AddPermission(std::move(p)));

    // The multi-relation query cannot be covered: DEPT has no permission
    // (INGRES permissions attach to a single relation).
    auto joined = ing.Retrieve("clerk", staff_query.targets,
                               staff_query.conditions, db);
    std::cout << "[INGRES] the join query: "
              << (joined.ok() ? "allowed?!" : joined.status().ToString())
              << "\n";
    // Within the single-relation permission, rows reduce gracefully...
    RetrieveStmt within_stmt =
        ParseRetrieve("retrieve (STAFF.NAME, STAFF.DEPT)");
    auto within = ing.Retrieve("clerk", within_stmt.targets,
                               within_stmt.conditions, db);
    std::cout << "[INGRES] retrieve (NAME, DEPT): "
              << (within.ok() ? "reduced to sales rows -" : "rejected")
              << "\n";
    if (within.ok()) {
      std::cout << PrintRelation(*within);
    }
    // ...but one extra column rejects the whole query (the asymmetry).
    RetrieveStmt wide = ParseRetrieve(
        "retrieve (STAFF.NAME, STAFF.DEPT, STAFF.SALARY)");
    auto beyond =
        ing.Retrieve("clerk", wide.targets, wide.conditions, db);
    std::cout << "[INGRES] retrieve (NAME, DEPT, SALARY): "
              << (beyond.ok() ? "allowed?!" : beyond.status().ToString())
              << "\n\n";
  }

  // --- Motro's model ------------------------------------------------------
  {
    ViewCatalog catalog(&db.schema());
    Statement view_stmt = Unwrap(ParseStatement(view_text));
    Check(catalog.DefineView(std::get<ViewStmt>(view_stmt)));
    Check(catalog.Permit("SALES_FLOOR", "clerk"));
    Authorizer authorizer(&db, &catalog);

    for (const char* text :
         {// The join query: reduced to sales rows, every column delivered.
          "retrieve (STAFF.NAME, STAFF.DEPT, DEPT.FLOOR) "
          "where STAFF.DEPT = DEPT.DNAME",
          // One column beyond the permission: SALARY masks, the rest flows
          // (rows AND columns reduce symmetrically).
          "retrieve (STAFF.NAME, STAFF.DEPT, STAFF.SALARY, DEPT.FLOOR) "
          "where STAFF.DEPT = DEPT.DNAME"}) {
      RetrieveStmt stmt = ParseRetrieve(text);
      ConjunctiveQuery query =
          Unwrap(ConjunctiveQuery::FromRetrieve(db.schema(), stmt));
      AuthorizationResult result =
          Unwrap(authorizer.Retrieve("clerk", query));
      std::cout << "[Motro] " << text << ":\n";
      if (result.denied) {
        std::cout << "  permission denied\n";
        continue;
      }
      std::cout << PrintRelation(result.answer);
      for (const InferredPermit& permit : result.permits) {
        std::cout << permit.ToString() << "\n";
      }
      std::cout << "\n";
    }
  }
  return 0;
}
