// Multi-user audit: drives the library API directly (no engine) to
// inspect the authorization machinery — the stored meta-relations of
// Figure 1, per-user masks for one query, and the effect of switching
// the Section 4.2 refinements off.
//
// Build & run:   cmake --build build && ./build/examples/multiuser_audit

#include <iostream>

#include "authz/authorizer.h"
#include "calculus/conjunctive_query.h"
#include "engine/table_printer.h"
#include "meta/view_store.h"
#include "parser/parser.h"
#include "storage/relation.h"

using namespace viewauth;

namespace {

// Dies on error; fine for an example.
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // --- Build the paper's database programmatically. -------------------
  DatabaseInstance db;
  Check(db.CreateRelation(Unwrap(RelationSchema::Make(
      "EMPLOYEE",
      {{"NAME", ValueType::kString},
       {"TITLE", ValueType::kString},
       {"SALARY", ValueType::kInt64}},
      {0}))));
  Check(db.CreateRelation(Unwrap(RelationSchema::Make(
      "PROJECT",
      {{"NUMBER", ValueType::kString},
       {"SPONSOR", ValueType::kString},
       {"BUDGET", ValueType::kInt64}},
      {0}))));
  Check(db.CreateRelation(Unwrap(RelationSchema::Make(
      "ASSIGNMENT",
      {{"E_NAME", ValueType::kString}, {"P_NO", ValueType::kString}},
      {0, 1}))));
  for (auto [name, title, salary] :
       {std::tuple{"Jones", "manager", 26000},
        std::tuple{"Smith", "technician", 22000},
        std::tuple{"Brown", "engineer", 32000}}) {
    Check(db.Insert("EMPLOYEE", Tuple({Value::String(name),
                                       Value::String(title),
                                       Value::Int64(salary)})));
  }
  for (auto [number, sponsor, budget] :
       {std::tuple{"bq-45", "Acme", 300000},
        std::tuple{"sv-72", "Apex", 450000},
        std::tuple{"vg-13", "Summit", 150000}}) {
    Check(db.Insert("PROJECT", Tuple({Value::String(number),
                                      Value::String(sponsor),
                                      Value::Int64(budget)})));
  }
  for (auto [e, p] : {std::pair{"Jones", "bq-45"}, {"Smith", "bq-45"},
                      {"Jones", "sv-72"}, {"Brown", "sv-72"},
                      {"Smith", "vg-13"}, {"Brown", "vg-13"}}) {
    Check(db.Insert("ASSIGNMENT",
                    Tuple({Value::String(e), Value::String(p)})));
  }

  ViewCatalog catalog(&db.schema());
  auto define = [&](const char* text) {
    Statement stmt = Unwrap(ParseStatement(text));
    Check(catalog.DefineView(std::get<ViewStmt>(stmt)));
  };
  define("view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)");
  define(
      "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
      "PROJECT.BUDGET) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME and "
      "PROJECT.NUMBER = ASSIGNMENT.P_NO and PROJECT.BUDGET >= 250000");
  define(
      "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE) "
      "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE");
  define(
      "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) where "
      "PROJECT.SPONSOR = Acme");
  Check(catalog.Permit("SAE", "Brown"));
  Check(catalog.Permit("PSA", "Brown"));
  Check(catalog.Permit("EST", "Brown"));
  Check(catalog.Permit("ELP", "Klein"));
  Check(catalog.Permit("EST", "Klein"));

  // --- Audit 1: the stored form (the extended database of Figure 1). --
  std::cout << "=== Stored meta-relations (Figure 1) ===\n";
  TablePrintOptions raw;
  raw.sorted = false;
  raw.null_text = "";
  for (const char* rel : {"EMPLOYEE", "PROJECT", "ASSIGNMENT"}) {
    raw.caption = std::string(rel) + "'";
    std::cout << PrintRelation(Unwrap(catalog.MaterializeMetaRelation(rel)),
                               raw)
              << "\n";
  }
  raw.caption = "COMPARISON";
  std::cout << PrintRelation(catalog.MaterializeComparison(), raw) << "\n";
  raw.caption = "PERMISSION";
  std::cout << PrintRelation(catalog.MaterializePermission(), raw) << "\n";

  // --- Audit 2: per-user masks for the same query. ---------------------
  Authorizer authorizer(&db, &catalog);
  Statement stmt = Unwrap(ParseStatement(
      "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)"));
  ConjunctiveQuery query = Unwrap(
      ConjunctiveQuery::FromRetrieve(db.schema(), std::get<RetrieveStmt>(stmt)));
  auto namer = [&catalog](VarId v) { return catalog.VarName(v); };
  for (const char* user : {"Brown", "Klein"}) {
    MetaRelation mask = Unwrap(authorizer.DeriveMask(user, query));
    std::cout << "=== Mask of (NAME, TITLE, SALARY) for " << user
              << " ===\n"
              << mask.ToString(namer);
    for (const InferredPermit& permit : authorizer.DescribeMask(mask)) {
      std::cout << permit.ToString() << "\n";
    }
    std::cout << "\n";
  }

  // --- Audit 3: ablation — the same retrieve with refinements off. ----
  Statement pair_stmt = Unwrap(ParseStatement(
      "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, "
      "EMPLOYEE:2.SALARY) where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"));
  ConjunctiveQuery pair_query = Unwrap(ConjunctiveQuery::FromRetrieve(
      db.schema(), std::get<RetrieveStmt>(pair_stmt)));
  for (bool self_joins : {true, false}) {
    AuthorizationOptions options;
    options.self_joins = self_joins;
    AuthorizationResult result =
        Unwrap(authorizer.Retrieve("Brown", pair_query, options));
    std::cout << "=== Example 3 with self-joins "
              << (self_joins ? "ON" : "OFF") << " ===\n";
    TablePrintOptions print;
    print.caption = result.full_access ? "(full access)" : "(masked)";
    std::cout << PrintRelation(result.answer, print) << "\n";
  }
  return 0;
}
