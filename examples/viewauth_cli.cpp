// viewauth_cli: batch front-end over the engine.
//
// Usage:
//   viewauth_cli [--db STATE.log] [--salvage] [--deadline-ms N]
//                [--max-rows N] [--no-vectorized] [SCRIPT...]
//
// Executes each SCRIPT file in order (falling back to stdin when none is
// given) and prints the statements' outputs. With --db, state persists in
// a durable statement log: rerunning the tool against the same log
// continues where the last run left off. --salvage opens the log in
// salvage recovery mode, truncating a torn or corrupt tail (e.g. after a
// crash) instead of refusing to open; anything dropped is reported on
// stderr. --deadline-ms and --max-rows bound every retrieve in the
// script: a statement that runs past the deadline or over the row budget
// aborts cleanly with DeadlineExceeded / ResourceExhausted (0 =
// unlimited, the default). --no-vectorized falls back from the vectorized
// columnar data plan to the late-materialized tuple-at-a-time pipeline
// (a differential escape hatch; answers are identical).
//
// Example:
//   viewauth_cli --db company.log setup.va
//   echo 'retrieve (EMPLOYEE.NAME) as Brown' | viewauth_cli --db company.log

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/durable.h"
#include "engine/engine.h"
#include "parser/parser.h"

using namespace viewauth;

namespace {

int Fail(const Status& status) {
  std::cerr << "viewauth_cli: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  bool salvage = false;
  bool vectorized = true;
  long long deadline_ms = 0;
  long long max_rows = 0;
  std::vector<std::string> scripts;
  auto numeric_flag = [&](int* i, const char* flag,
                          long long* target) -> bool {
    if (*i + 1 >= argc) {
      std::cerr << "viewauth_cli: " << flag << " requires a number\n";
      return false;
    }
    try {
      *target = std::stoll(argv[++*i]);
    } catch (...) {
      std::cerr << "viewauth_cli: " << flag << ": expected a number, got '"
                << argv[*i] << "'\n";
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db") {
      if (i + 1 >= argc) {
        std::cerr << "viewauth_cli: --db requires a path\n";
        return 1;
      }
      db_path = argv[++i];
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--deadline-ms") {
      if (!numeric_flag(&i, "--deadline-ms", &deadline_ms)) return 1;
    } else if (arg == "--max-rows") {
      if (!numeric_flag(&i, "--max-rows", &max_rows)) return 1;
    } else if (arg == "--no-vectorized") {
      vectorized = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: viewauth_cli [--db STATE.log] [--salvage] "
                   "[--deadline-ms N] [--max-rows N] [--no-vectorized] "
                   "[SCRIPT...]\n";
      return 0;
    } else {
      scripts.push_back(std::move(arg));
    }
  }

  // Collect input: script files in order, else stdin.
  std::string input;
  if (scripts.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    input = buffer.str();
  } else {
    for (const std::string& script : scripts) {
      std::ifstream in(script);
      if (!in.good()) {
        std::cerr << "viewauth_cli: cannot read '" << script << "'\n";
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      input += buffer.str();
      input += "\n";
    }
  }

  if (!db_path.empty()) {
    DurableOptions options;
    options.recovery =
        salvage ? RecoveryMode::kSalvage : RecoveryMode::kStrict;
    auto durable = DurableEngine::Open(db_path, options);
    if (!durable.ok()) return Fail(durable.status());
    (*durable)->engine().options().deadline_ms = deadline_ms;
    (*durable)->engine().options().max_rows = max_rows;
    (*durable)->engine().options().use_vectorized_data_plan = vectorized;
    if ((*durable)->recovery_report().salvaged) {
      std::cerr << "viewauth_cli: salvaged '" << db_path << "': "
                << (*durable)->recovery_report().ToString() << "\n";
    }
    // Statement-at-a-time so each output prints as it happens; the
    // parser splits the program for us.
    auto statements = ParseProgram(input);
    if (!statements.ok()) return Fail(statements.status());
    for (const Statement& stmt : *statements) {
      auto out = (*durable)->Execute(StatementToString(stmt));
      if (!out.ok()) return Fail(out.status());
      if (!out->empty()) std::cout << *out << "\n";
    }
    return 0;
  }

  Engine engine;
  engine.options().deadline_ms = deadline_ms;
  engine.options().max_rows = max_rows;
  engine.options().use_vectorized_data_plan = vectorized;
  auto out = engine.ExecuteScript(input);
  if (!out.ok()) return Fail(out.status());
  std::cout << *out;
  return 0;
}
