// viewauth_cli: batch front-end over the engine.
//
// Usage:
//   viewauth_cli [--db STATE.log] [--salvage] [SCRIPT...]
//
// Executes each SCRIPT file in order (falling back to stdin when none is
// given) and prints the statements' outputs. With --db, state persists in
// a durable statement log: rerunning the tool against the same log
// continues where the last run left off. --salvage opens the log in
// salvage recovery mode, truncating a torn or corrupt tail (e.g. after a
// crash) instead of refusing to open; anything dropped is reported on
// stderr.
//
// Example:
//   viewauth_cli --db company.log setup.va
//   echo 'retrieve (EMPLOYEE.NAME) as Brown' | viewauth_cli --db company.log

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/durable.h"
#include "engine/engine.h"
#include "parser/parser.h"

using namespace viewauth;

namespace {

int Fail(const Status& status) {
  std::cerr << "viewauth_cli: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  bool salvage = false;
  std::vector<std::string> scripts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db") {
      if (i + 1 >= argc) {
        std::cerr << "viewauth_cli: --db requires a path\n";
        return 1;
      }
      db_path = argv[++i];
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: viewauth_cli [--db STATE.log] [--salvage] [SCRIPT...]\n";
      return 0;
    } else {
      scripts.push_back(std::move(arg));
    }
  }

  // Collect input: script files in order, else stdin.
  std::string input;
  if (scripts.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    input = buffer.str();
  } else {
    for (const std::string& script : scripts) {
      std::ifstream in(script);
      if (!in.good()) {
        std::cerr << "viewauth_cli: cannot read '" << script << "'\n";
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      input += buffer.str();
      input += "\n";
    }
  }

  if (!db_path.empty()) {
    DurableOptions options;
    options.recovery =
        salvage ? RecoveryMode::kSalvage : RecoveryMode::kStrict;
    auto durable = DurableEngine::Open(db_path, options);
    if (!durable.ok()) return Fail(durable.status());
    if ((*durable)->recovery_report().salvaged) {
      std::cerr << "viewauth_cli: salvaged '" << db_path << "': "
                << (*durable)->recovery_report().ToString() << "\n";
    }
    // Statement-at-a-time so each output prints as it happens; the
    // parser splits the program for us.
    auto statements = ParseProgram(input);
    if (!statements.ok()) return Fail(statements.status());
    for (const Statement& stmt : *statements) {
      auto out = (*durable)->Execute(StatementToString(stmt));
      if (!out.ok()) return Fail(out.status());
      if (!out->empty()) std::cout << *out << "\n";
    }
    return 0;
  }

  Engine engine;
  auto out = engine.ExecuteScript(input);
  if (!out.ok()) return Fail(out.status());
  std::cout << *out;
  return 0;
}
